//! Drain-style log template mining (He et al., ICWS 2017) — an
//! alternative to the signature tree.
//!
//! Drain groups messages with a fixed-depth parse tree: first by token
//! count, then by the literal tokens at the first few positions
//! (variable-looking tokens fall into a wildcard branch), and finally by
//! token-overlap similarity against the clusters in the leaf. Cluster
//! templates keep a token where all members agree and a wildcard where
//! they differ.
//!
//! The reproduction pipeline uses the signature tree (the paper's
//! choice, after Qiu et al.); this module exists as a comparison
//! substrate, and its tests assert that the two miners recover the same
//! template partition on rendered catalogs.

use crate::signature_tree::{looks_variable, SigToken, Signature};
use std::collections::HashMap;

/// Configuration for [`DrainMiner`].
#[derive(Debug, Clone)]
pub struct DrainConfig {
    /// Number of leading token positions used as tree branches.
    pub depth: usize,
    /// Similarity threshold for joining an existing cluster: fraction of
    /// positions where the message token equals a *literal* cluster
    /// template token (wildcards contribute nothing).
    pub sim_threshold: f32,
    /// Cap on clusters per leaf (oldest win; new messages below the
    /// threshold then join the most similar cluster anyway).
    pub max_clusters_per_leaf: usize,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig { depth: 2, sim_threshold: 0.55, max_clusters_per_leaf: 64 }
    }
}

#[derive(Debug, Clone)]
struct Cluster {
    /// Current template: `None` = wildcard position.
    template: Vec<Option<String>>,
}

impl Cluster {
    fn new(words: &[&str]) -> Cluster {
        Cluster {
            template: words
                .iter()
                .map(|w| if looks_variable(w) { None } else { Some(w.to_string()) })
                .collect(),
        }
    }

    /// Clustering similarity: fraction of positions whose *literal*
    /// template token equals the message token. Wildcards contribute
    /// nothing — otherwise heavily-wildcarded clusters would swallow
    /// everything of the same length.
    fn similarity(&self, words: &[&str]) -> f32 {
        let same = self
            .template
            .iter()
            .zip(words.iter())
            .filter(|(t, w)| matches!(t, Some(tok) if tok == *w))
            .count();
        same as f32 / words.len().max(1) as f32
    }

    /// Template matching: every literal position must agree.
    fn matches(&self, words: &[&str]) -> bool {
        self.template.len() == words.len()
            && self.template.iter().zip(words.iter()).all(|(t, w)| match t {
                Some(tok) => tok == *w,
                None => true,
            })
    }

    /// Number of literal positions (specificity).
    fn literal_count(&self) -> usize {
        self.template.iter().filter(|t| t.is_some()).count()
    }

    /// Merges `words` into the template, wildcarding disagreements.
    fn absorb(&mut self, words: &[&str]) {
        for (slot, w) in self.template.iter_mut().zip(words.iter()) {
            let keep = matches!(slot, Some(tok) if tok == w);
            if !keep {
                *slot = None;
            }
        }
    }
}

/// An incremental Drain miner.
#[derive(Debug, Clone)]
pub struct DrainMiner {
    cfg: DrainConfig,
    /// Leaf key -> clusters. The key encodes token count and the first
    /// `depth` branch tokens.
    leaves: HashMap<String, Vec<Cluster>>,
}

impl DrainMiner {
    /// Empty miner.
    pub fn new(cfg: DrainConfig) -> DrainMiner {
        DrainMiner { cfg, leaves: HashMap::new() }
    }

    fn leaf_key(&self, words: &[&str]) -> String {
        let mut key = format!("{}", words.len());
        for w in words.iter().take(self.cfg.depth) {
            key.push('\u{1f}');
            if looks_variable(w) {
                key.push('*');
            } else {
                key.push_str(w);
            }
        }
        key
    }

    /// Feeds one message body into the miner.
    pub fn observe(&mut self, text: &str) {
        let words: Vec<&str> = text.split_whitespace().collect();
        if words.is_empty() {
            return;
        }
        let key = self.leaf_key(&words);
        let threshold = self.cfg.sim_threshold;
        let cap = self.cfg.max_clusters_per_leaf;
        let clusters = self.leaves.entry(key).or_default();
        let best = clusters
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.similarity(&words)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        match best {
            // Similar enough: merge into the best cluster.
            Some((i, sim)) if sim >= threshold => clusters[i].absorb(&words),
            // Dissimilar and room left: start a new cluster.
            _ if clusters.len() < cap => clusters.push(Cluster::new(&words)),
            // Leaf at capacity: join the most similar cluster anyway.
            Some((i, _)) => clusters[i].absorb(&words),
            None => clusters.push(Cluster::new(&words)),
        }
    }

    /// Builds a miner from a whole corpus.
    pub fn mine(corpus: &[&str], cfg: DrainConfig) -> DrainMiner {
        let mut miner = DrainMiner::new(cfg);
        for text in corpus {
            miner.observe(text);
        }
        miner
    }

    /// Extracted templates as [`Signature`]s (ids are dense, arbitrary
    /// but deterministic order).
    pub fn signatures(&self) -> Vec<Signature> {
        let mut keys: Vec<&String> = self.leaves.keys().collect();
        keys.sort();
        let mut out = Vec::new();
        for key in keys {
            for cluster in &self.leaves[key] {
                let tokens = cluster
                    .template
                    .iter()
                    .map(|slot| match slot {
                        Some(tok) => SigToken::Lit(tok.clone()),
                        None => SigToken::Wildcard,
                    })
                    .collect();
                out.push(Signature { id: out.len(), tokens });
            }
        }
        out
    }

    /// Matches a message against the mined templates; returns the index
    /// into [`DrainMiner::signatures`] of the most similar cluster in
    /// the message's leaf, when one clears the similarity threshold.
    pub fn match_message(&self, text: &str) -> Option<usize> {
        let words: Vec<&str> = text.split_whitespace().collect();
        if words.is_empty() {
            return None;
        }
        let key = self.leaf_key(&words);
        let clusters = self.leaves.get(&key)?;

        // Index of this leaf's first cluster in the flattened signature
        // list (leaves are flattened in sorted-key order).
        let mut keys: Vec<&String> = self.leaves.keys().collect();
        keys.sort();
        let mut base = 0usize;
        for k in keys {
            if *k == key {
                break;
            }
            base += self.leaves[k].len();
        }

        clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(&words))
            .max_by_key(|(_, c)| c.literal_count())
            .map(|(i, _)| base + i)
    }

    /// Total number of mined clusters.
    pub fn len(&self) -> usize {
        self.leaves.values().map(|v| v.len()).sum()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature_tree::{SignatureTree, SignatureTreeConfig};

    fn corpus() -> Vec<String> {
        let mut msgs = Vec::new();
        for i in 0..30 {
            msgs.push(format!("BGP peer 10.0.{}.1 session flap count {}", i, i * 3));
            msgs.push(format!("interface xe-0/0/{} carrier down", i % 8));
            msgs.push(format!("fan tray {} failure detected on slot {}", i % 4, i % 6));
            msgs.push(format!("fan tray {} inserted cleanly on slot {}", i % 4, i % 6));
        }
        msgs
    }

    #[test]
    fn mines_one_cluster_per_template() {
        let msgs = corpus();
        let refs: Vec<&str> = msgs.iter().map(|s| s.as_str()).collect();
        let miner = DrainMiner::mine(&refs, DrainConfig::default());
        assert_eq!(
            miner.len(),
            4,
            "templates: {:?}",
            miner.signatures().iter().map(|s| s.pattern()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn templates_wildcard_variable_positions() {
        let msgs = corpus();
        let refs: Vec<&str> = msgs.iter().map(|s| s.as_str()).collect();
        let miner = DrainMiner::mine(&refs, DrainConfig::default());
        for sig in miner.signatures() {
            for tok in &sig.tokens {
                if let SigToken::Lit(w) = tok {
                    assert!(!looks_variable(w), "literal {:?} looks variable", w);
                }
            }
        }
    }

    #[test]
    fn matching_is_consistent_for_fresh_instances() {
        let msgs = corpus();
        let refs: Vec<&str> = msgs.iter().map(|s| s.as_str()).collect();
        let miner = DrainMiner::mine(&refs, DrainConfig::default());
        let a = miner.match_message("BGP peer 99.1.2.3 session flap count 777");
        let b = miner.match_message("BGP peer 5.5.5.5 session flap count 2");
        assert!(a.is_some());
        assert_eq!(a, b);
        let c = miner.match_message("fan tray 9 failure detected on slot 9");
        assert_ne!(a, c);
    }

    #[test]
    fn unseen_structure_returns_none() {
        let msgs = corpus();
        let refs: Vec<&str> = msgs.iter().map(|s| s.as_str()).collect();
        let miner = DrainMiner::mine(&refs, DrainConfig::default());
        assert_eq!(miner.match_message(""), None);
        assert_eq!(miner.match_message("word"), None);
    }

    #[test]
    fn agrees_with_signature_tree_on_rendered_catalog() {
        // Both miners must induce the same partition of a rendered
        // template corpus: same-template messages together, different
        // templates apart.
        use crate::message::Severity;
        use crate::template::{Layer, TemplateSet};
        use rand::{rngs::SmallRng, SeedableRng};

        let mut set = TemplateSet::new();
        set.add(
            "rpd",
            Severity::Info,
            Layer::Protocol,
            "BGP peer {ip} established after {num} retries",
        );
        set.add(
            "rpd",
            Severity::Info,
            Layer::Protocol,
            "OSPF neighbor {ip} adjacency timer {num} expired",
        );
        set.add(
            "dcd",
            Severity::Error,
            Layer::Link,
            "interface {iface} flap storm of {num} events",
        );
        set.add(
            "kernel",
            Severity::Warning,
            Layer::System,
            "memory pool {hex} usage at {num} percent",
        );

        let mut rng = SmallRng::seed_from_u64(11);
        let mut texts = Vec::new();
        let mut truth = Vec::new();
        for t in set.iter() {
            for _ in 0..25 {
                texts.push(t.render(&mut rng));
                truth.push(t.id);
            }
        }
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let drain = DrainMiner::mine(&refs, DrainConfig::default());
        let tree = SignatureTree::build(&refs, &SignatureTreeConfig::default());

        for i in 0..texts.len() {
            for j in (i + 1)..texts.len() {
                let same_truth = truth[i] == truth[j];
                let same_drain = drain.match_message(&texts[i]) == drain.match_message(&texts[j]);
                let same_tree = tree.match_message(&texts[i]) == tree.match_message(&texts[j]);
                assert_eq!(same_drain, same_truth, "drain split/merged {} vs {}", i, j);
                assert_eq!(same_tree, same_truth, "tree split/merged {} vs {}", i, j);
            }
        }
    }
}
