//! Template vocabulary: maps sparse signature/catalog ids to the dense,
//! bounded id space the sequence model is trained over.
//!
//! Id 0 is reserved for unknown templates. The vocabulary can reserve
//! spare capacity so that templates first seen *after* a software update
//! can be assigned dense ids without changing the model's output width —
//! a prerequisite for the paper's transfer-learning adaptation, which
//! keeps the architecture fixed and fine-tunes only the top layers.

use std::collections::HashMap;

/// Dense id reserved for out-of-vocabulary templates.
pub const UNKNOWN_ID: usize = 0;

/// A template vocabulary with optional spare capacity.
#[derive(Debug, Clone)]
pub struct TemplateVocab {
    map: HashMap<usize, usize>,
    /// Dense id -> raw id (raw id of `UNKNOWN_ID` is `usize::MAX`).
    rev: Vec<usize>,
    capacity: usize,
}

impl TemplateVocab {
    /// Builds a vocabulary from the raw template ids observed in
    /// training data, reserving `spare` additional dense slots for
    /// templates discovered later.
    pub fn build(raw_ids: impl IntoIterator<Item = usize>, spare: usize) -> TemplateVocab {
        let mut map = HashMap::new();
        let mut rev = vec![usize::MAX]; // slot 0 = UNKNOWN
        for raw in raw_ids {
            map.entry(raw).or_insert_with(|| {
                rev.push(raw);
                rev.len() - 1
            });
        }
        let capacity = rev.len() + spare;
        TemplateVocab { map, rev, capacity }
    }

    /// Total dense-id space (model output width), including unused spare
    /// slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of dense ids currently assigned (including `UNKNOWN_ID`).
    pub fn assigned(&self) -> usize {
        self.rev.len()
    }

    /// Encodes a raw id, returning [`UNKNOWN_ID`] when unseen.
    pub fn encode(&self, raw: usize) -> usize {
        self.map.get(&raw).copied().unwrap_or(UNKNOWN_ID)
    }

    /// Encodes a raw id, assigning a spare dense slot on first sight when
    /// capacity remains. Returns the dense id either way (possibly
    /// [`UNKNOWN_ID`] when full).
    pub fn encode_or_assign(&mut self, raw: usize) -> usize {
        if let Some(&dense) = self.map.get(&raw) {
            return dense;
        }
        if self.rev.len() < self.capacity {
            let dense = self.rev.len();
            self.rev.push(raw);
            self.map.insert(raw, dense);
            dense
        } else {
            UNKNOWN_ID
        }
    }

    /// Decodes a dense id back to the raw id (`None` for unknown/unused).
    pub fn decode(&self, dense: usize) -> Option<usize> {
        match self.rev.get(dense) {
            Some(&raw) if raw != usize::MAX => Some(raw),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_assigns_dense_ids_in_first_seen_order() {
        let v = TemplateVocab::build([42, 7, 42, 99], 0);
        assert_eq!(v.encode(42), 1);
        assert_eq!(v.encode(7), 2);
        assert_eq!(v.encode(99), 3);
        assert_eq!(v.assigned(), 4);
        assert_eq!(v.capacity(), 4);
    }

    #[test]
    fn unseen_ids_encode_to_unknown() {
        let v = TemplateVocab::build([1, 2], 0);
        assert_eq!(v.encode(777), UNKNOWN_ID);
    }

    #[test]
    fn decode_roundtrip() {
        let v = TemplateVocab::build([10, 20], 3);
        assert_eq!(v.decode(v.encode(10)), Some(10));
        assert_eq!(v.decode(UNKNOWN_ID), None);
        assert_eq!(v.decode(100), None);
    }

    #[test]
    fn spare_slots_absorb_new_templates() {
        let mut v = TemplateVocab::build([1], 2);
        assert_eq!(v.capacity(), 4);
        let a = v.encode_or_assign(50);
        let b = v.encode_or_assign(60);
        assert_ne!(a, UNKNOWN_ID);
        assert_ne!(b, UNKNOWN_ID);
        assert_ne!(a, b);
        // Capacity exhausted: further new templates collapse to UNKNOWN.
        assert_eq!(v.encode_or_assign(70), UNKNOWN_ID);
        // Existing assignments are stable.
        assert_eq!(v.encode_or_assign(50), a);
    }
}
