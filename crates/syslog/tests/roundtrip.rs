//! Property tests for the raw-text path: template render -> signature
//! extraction -> message matching must be consistent.

use nfv_syslog::message::{Severity, SyslogMessage};
use nfv_syslog::parse::parse_line;
use nfv_syslog::template::Layer;
use nfv_syslog::{SignatureTree, SignatureTreeConfig, TemplateSet};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

/// A small catalog of distinct template structures.
fn catalog() -> TemplateSet {
    let mut set = TemplateSet::new();
    set.add("rpd", Severity::Warning, Layer::Protocol, "BGP peer {ip} session flap detected");
    set.add("rpd", Severity::Notice, Layer::Protocol, "OSPF neighbor {ip} state changed to Full");
    set.add("dcd", Severity::Error, Layer::Link, "interface {iface} carrier transition down");
    set.add(
        "chassisd",
        Severity::Critical,
        Layer::Physical,
        "fan tray {num} failure on slot {num}",
    );
    set.add(
        "kernel",
        Severity::Info,
        Layer::System,
        "task {hex} scheduler latency {num} ms exceeded",
    );
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rendering many instances and rebuilding the signature tree always
    /// recovers a tree that maps fresh renders of template T to the same
    /// signature id as other renders of T, and different templates to
    /// different ids.
    #[test]
    fn render_extract_match_is_consistent(seed in 0u64..1000) {
        let set = catalog();
        let mut rng = SmallRng::seed_from_u64(seed);

        // Training corpus: 25 renders of each template.
        let mut corpus = Vec::new();
        for t in set.iter() {
            for _ in 0..25 {
                corpus.push(t.render(&mut rng));
            }
        }
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let tree = SignatureTree::build(&refs, &SignatureTreeConfig::default());

        // Fresh renders must match, consistently per template.
        let mut seen_ids = Vec::new();
        for t in set.iter() {
            let a = tree.match_message(&t.render(&mut rng));
            let b = tree.match_message(&t.render(&mut rng));
            prop_assert!(a.is_some(), "template {} unmatched", t.id);
            prop_assert_eq!(a, b, "template {} mapped inconsistently", t.id);
            seen_ids.push(a.unwrap());
        }
        // Distinct templates map to distinct signatures.
        let unique: std::collections::HashSet<usize> = seen_ids.iter().copied().collect();
        prop_assert_eq!(unique.len(), seen_ids.len());
    }

    /// Syslog line rendering followed by parsing is the identity on all
    /// fields for arbitrary timestamps inside the 18-month window.
    #[test]
    fn line_roundtrip(ts in 0u64..46_656_000, sev in 0u8..8, host_n in 0usize..38) {
        let msg = SyslogMessage {
            timestamp: ts,
            host: format!("vpe{:02}", host_n),
            process: "rpd".to_string(),
            severity: Severity::from_code(sev).unwrap(),
            text: "BGP peer 10.1.2.3 session flap detected".to_string(),
        };
        let parsed = parse_line(&msg.to_line(), ts.saturating_sub(60)).unwrap();
        prop_assert_eq!(parsed, msg);
    }

    /// The gap feature is monotone in the gap.
    #[test]
    fn gap_feature_monotone(a in 0u64..200_000, b in 0u64..200_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(nfv_syslog::stream::gap_feature(lo) <= nfv_syslog::stream::gap_feature(hi));
    }

    /// Window extraction never fabricates data: every extracted window is
    /// a contiguous slice of the stream and targets the record that
    /// actually followed.
    #[test]
    fn windows_are_faithful(times in prop::collection::vec(0u64..10_000, 5..40), k in 1usize..4) {
        let records: Vec<nfv_syslog::LogRecord> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| nfv_syslog::LogRecord { time: t, template: i % 7 })
            .collect();
        let stream = nfv_syslog::LogStream::from_records(records);
        let ws = stream.windows(k);
        let recs = stream.records();
        prop_assert_eq!(ws.len(), recs.len().saturating_sub(k));
        for (i, ids) in ws.ids.iter().enumerate() {
            for (j, &id) in ids.iter().enumerate() {
                prop_assert_eq!(id, recs[i + j].template);
            }
            prop_assert_eq!(ws.targets[i], recs[i + k].template);
            prop_assert_eq!(ws.times[i], recs[i + k].time);
        }
    }
}
