//! Model containers: the paper's next-template sequence network and a
//! plain MLP used to build the autoencoder baseline.

use crate::checkpoint::{Checkpoint, CheckpointError, MatrixDump};
use crate::dense::{Dense, DenseCache};
use crate::embedding::Embedding;
use crate::loss;
use crate::lstm::{LstmGradRefs, LstmLayer, LstmSeqCache};
use crate::optimizer::Optimizer;
use crate::trainer::{clip_and_apply, BatchLoss, GradientSet, ShardedBatchLoss, DEFAULT_GRAD_CLIP};
use crate::Activation;
use crate::Trainable;
use nfv_tensor::{Matrix, Workspace};
use rand::Rng;
use std::mem;

/// Hyper-parameters of [`SequenceModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceModelConfig {
    /// Template vocabulary size (output classes).
    pub vocab: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Hidden units per LSTM layer.
    pub hidden: usize,
    /// Number of stacked LSTM layers (the paper uses 2).
    pub lstm_layers: usize,
    /// Whether to append the normalized inter-arrival gap to each step's
    /// input (the paper's input tuples are `(m_i, t_i - t_{i-1})`).
    pub use_gap_feature: bool,
}

impl Default for SequenceModelConfig {
    fn default() -> Self {
        SequenceModelConfig {
            vocab: 64,
            embed_dim: 16,
            hidden: 32,
            lstm_layers: 2,
            use_gap_feature: true,
        }
    }
}

/// The paper's anomaly-detection network: `Embedding (+ gap feature) ->
/// LSTM x N -> Dense`, predicting a probability distribution over the
/// next syslog template.
///
/// Components are ordered bottom-to-top as
/// `[embedding, lstm_0, .., lstm_{N-1}, head]`; transfer learning freezes
/// a prefix of that list via [`SequenceModel::set_frozen_bottom`] and
/// fine-tunes the rest (§4.3 of the paper).
#[derive(Debug, Clone)]
pub struct SequenceModel {
    cfg: SequenceModelConfig,
    embedding: Embedding,
    lstms: Vec<LstmLayer>,
    head: Dense,
    frozen_bottom: usize,
    scratch: SeqScratch,
}

/// One training/inference batch of fixed-length windows.
///
/// `ids[b]` is the template-id window for sample `b`; all windows must
/// share the same length. `gaps[b][t]` is the normalized inter-arrival
/// gap preceding `ids[b][t]` and is required when the model was built
/// with `use_gap_feature`.
#[derive(Debug, Clone, Default)]
pub struct SeqBatch {
    /// Template-id windows, one per sample.
    pub ids: Vec<Vec<usize>>,
    /// Normalized gap features, parallel to `ids` (may be empty when the
    /// model does not use the gap feature).
    pub gaps: Vec<Vec<f32>>,
}

impl SeqBatch {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Window length (0 for an empty batch).
    pub fn window(&self) -> usize {
        self.ids.first().map_or(0, |w| w.len())
    }
}

/// A borrowed view of a window dataset: training/inference code selects
/// samples by index, so batches are index lists instead of gathered
/// copies. `targets` may be empty for inference-only use.
#[derive(Debug, Clone, Copy)]
pub struct SeqView<'a> {
    /// Template-id windows, one per sample.
    pub ids: &'a [Vec<usize>],
    /// Normalized gap features, parallel to `ids` (may be empty when the
    /// model does not use the gap feature).
    pub gaps: &'a [Vec<f32>],
    /// Next-template target per sample (empty for inference).
    pub targets: &'a [usize],
}

/// Reusable forward/backward buffers for [`SequenceModel`]. Shaped on
/// first use and reshaped in place afterwards, so steady-state training
/// steps allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct SeqScratch {
    ws: Workspace,
    ids_t: Vec<usize>,
    targets: Vec<usize>,
    /// Per-step inputs (`B x (embed_dim + gap)`).
    xs: Vec<Matrix>,
    /// Ping-pong hidden-sequence buffers for the LSTM stack.
    seq_a: Vec<Matrix>,
    seq_b: Vec<Matrix>,
    /// Ping-pong gradient-sequence buffers for BPTT.
    d_a: Vec<Matrix>,
    d_b: Vec<Matrix>,
    lstm_caches: Vec<LstmSeqCache>,
    head_cache: DenseCache,
    /// Holds probabilities after inference, `dL/dlogits` during training.
    probs: Matrix,
    demb_rows: Matrix,
    dtable_tmp: Matrix,
}

impl SequenceModel {
    /// Builds a model with freshly initialized parameters.
    pub fn new(cfg: SequenceModelConfig, rng: &mut impl Rng) -> Self {
        assert!(cfg.vocab > 1, "SequenceModel: vocabulary must have at least 2 classes");
        assert!(cfg.lstm_layers >= 1, "SequenceModel: need at least one LSTM layer");
        let embedding = Embedding::new(cfg.vocab, cfg.embed_dim, rng);
        let in0 = cfg.embed_dim + usize::from(cfg.use_gap_feature);
        let mut lstms = Vec::with_capacity(cfg.lstm_layers);
        for l in 0..cfg.lstm_layers {
            let input = if l == 0 { in0 } else { cfg.hidden };
            lstms.push(LstmLayer::new(input, cfg.hidden, rng));
        }
        let head = Dense::new(cfg.hidden, cfg.vocab, Activation::Identity, rng);
        SequenceModel {
            cfg,
            embedding,
            lstms,
            head,
            frozen_bottom: 0,
            scratch: SeqScratch::default(),
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &SequenceModelConfig {
        &self.cfg
    }

    /// Number of components (embedding + LSTM layers + head).
    pub fn component_count(&self) -> usize {
        2 + self.lstms.len()
    }

    /// Freezes the bottom `n` components (0 = train everything). Frozen
    /// components receive no optimizer updates — the transfer-learning
    /// student copies the teacher and fine-tunes only the top layers.
    pub fn set_frozen_bottom(&mut self, n: usize) {
        assert!(
            n < self.component_count(),
            "cannot freeze all {} components",
            self.component_count()
        );
        self.frozen_bottom = n;
    }

    /// Currently frozen bottom-component count.
    pub fn frozen_bottom(&self) -> usize {
        self.frozen_bottom
    }

    /// Validates the samples selected by `indices` and returns the shared
    /// window length.
    fn check_view(&self, view: &SeqView<'_>, indices: &[usize]) -> usize {
        assert!(!indices.is_empty(), "SequenceModel: empty batch");
        let t_len = view.ids[indices[0]].len();
        assert!(t_len > 0, "SequenceModel: zero-length windows");
        for &i in indices {
            assert_eq!(view.ids[i].len(), t_len, "SequenceModel: ragged windows");
        }
        if self.cfg.use_gap_feature {
            assert_eq!(view.gaps.len(), view.ids.len(), "SequenceModel: gaps required");
            for &i in indices {
                assert_eq!(view.gaps[i].len(), t_len, "SequenceModel: ragged gap rows");
            }
        }
        t_len
    }

    /// Allocation-free forward pass over the selected samples; the logits
    /// end up in `s.head_cache.output()`.
    fn forward_scratch(&self, view: &SeqView<'_>, indices: &[usize], s: &mut SeqScratch) {
        let t_len = self.check_view(view, indices);
        let b = indices.len();
        let in0 = self.cfg.embed_dim + usize::from(self.cfg.use_gap_feature);
        let SeqScratch { ws, ids_t, xs, seq_a, seq_b, lstm_caches, head_cache, .. } = s;

        // Per-step inputs: embed the t-th id of every sample, then fill
        // the gap column when configured.
        ws.ensure_seq(xs, t_len, b, in0);
        for (t, x) in xs.iter_mut().enumerate() {
            ids_t.clear();
            ids_t.extend(indices.iter().map(|&i| view.ids[i][t]));
            self.embedding.forward_into(ids_t, x);
            if self.cfg.use_gap_feature {
                for (r, &i) in indices.iter().enumerate() {
                    x.set(r, in0 - 1, view.gaps[i][t]);
                }
            }
        }

        let n = self.lstms.len();
        if lstm_caches.len() != n {
            lstm_caches.truncate(n);
            lstm_caches.resize_with(n, LstmSeqCache::default);
        }
        // Ping-pong the hidden sequences through the stack: xs -> a -> b
        // -> a -> ...
        for (l, lstm) in self.lstms.iter().enumerate() {
            if l == 0 {
                lstm.forward_seq_into(xs, seq_a, &mut lstm_caches[0], ws);
            } else if l % 2 == 1 {
                lstm.forward_seq_into(seq_a, seq_b, &mut lstm_caches[l], ws);
            } else {
                lstm.forward_seq_into(seq_b, seq_a, &mut lstm_caches[l], ws);
            }
        }
        let top = if n % 2 == 1 { seq_a } else { seq_b };
        let last_h = top.last().expect("non-empty sequence");
        self.head.forward_into(last_h, head_cache);
    }

    /// Allocation-free backward pass. Expects `s.probs` to hold
    /// `dL/dlogits` and accumulates parameter gradients into `grads`.
    fn backward_scratch(
        &self,
        view: &SeqView<'_>,
        indices: &[usize],
        s: &mut SeqScratch,
        grads: &mut GradientSet,
    ) {
        let t_len = view.ids[indices[0]].len();
        let b = indices.len();
        let n = self.lstms.len();
        let slots = grads.slots_mut();
        let SeqScratch {
            ws,
            ids_t,
            d_a,
            d_b,
            lstm_caches,
            head_cache,
            probs,
            demb_rows,
            dtable_tmp,
            ..
        } = s;

        // Head backward; only the last step feeds the loss, so every
        // other step's incoming gradient is zero.
        ws.ensure_seq(d_a, t_len, b, self.cfg.hidden);
        for m in d_a.iter_mut().take(t_len - 1) {
            m.fill_zero();
        }
        let head_base = 1 + 3 * n;
        {
            let [dw, db] = &mut slots[head_base..head_base + 2] else { unreachable!() };
            self.head.backward_into(head_cache, probs, &mut d_a[t_len - 1], dw, db, ws);
        }

        // BPTT down the LSTM stack, ping-ponging the per-step gradients.
        for l in (0..n).rev() {
            let base = 1 + 3 * l;
            let [dwx, dwh, db] = &mut slots[base..base + 3] else { unreachable!() };
            let refs = LstmGradRefs { dwx, dwh, db };
            if (n - 1 - l).is_multiple_of(2) {
                self.lstms[l].backward_seq_into(&lstm_caches[l], d_a, d_b, refs, ws);
            } else {
                self.lstms[l].backward_seq_into(&lstm_caches[l], d_b, d_a, refs, ws);
            }
        }
        let d_bottom: &[Matrix] = if n % 2 == 1 { d_b } else { d_a };

        // Embedding backward: strip the gap column when present.
        let ed = self.cfg.embed_dim;
        for (t, dx) in d_bottom.iter().enumerate() {
            ids_t.clear();
            ids_t.extend(indices.iter().map(|&i| view.ids[i][t]));
            demb_rows.reset(b, ed);
            for r in 0..b {
                demb_rows.row_mut(r).copy_from_slice(&dx.row(r)[..ed]);
            }
            dtable_tmp.reset(self.cfg.vocab, ed);
            dtable_tmp.fill_zero();
            dtable_tmp.scatter_add_rows(ids_t, demb_rows);
            slots[0].add_assign(dtable_tmp);
        }
    }

    /// Forward + loss + backward for one shard, using caller-provided
    /// scratch (so `&self` stays shared while the mutable state lives
    /// with the caller — the model's own moved-out scratch in the serial
    /// path, a per-worker context in the data-parallel path).
    ///
    /// Gradients are normalized by `total` (the whole batch's row count)
    /// and the returned loss is the shard's unnormalized sum, so
    /// per-shard results add up to the batched mean exactly as the serial
    /// path computes it.
    fn seq_grads_impl(
        &self,
        view: &SeqView<'_>,
        indices: &[usize],
        s: &mut SeqScratch,
        grads: &mut GradientSet,
        total: usize,
    ) -> f32 {
        self.forward_scratch(view, indices, s);
        s.targets.clear();
        for &i in indices {
            s.targets.push(view.targets[i]);
        }
        let loss_sum = loss::softmax_cross_entropy_scaled_into(
            s.head_cache.output(),
            &s.targets,
            &mut s.probs,
            total,
        );
        self.backward_scratch(view, indices, s, grads);
        loss_sum
    }

    /// Probability distribution over the next template for each selected
    /// window (`indices.len() x vocab`), written into `scratch` and
    /// returned by reference — zero allocation in steady state.
    pub fn predict_probs_view<'s>(
        &self,
        view: &SeqView<'_>,
        indices: &[usize],
        scratch: &'s mut SeqScratch,
    ) -> &'s Matrix {
        self.forward_scratch(view, indices, scratch);
        scratch.probs.copy_from(scratch.head_cache.output());
        scratch.probs.softmax_rows_inplace();
        &scratch.probs
    }

    /// Probability distribution over the next template for each window
    /// (`B x vocab`).
    pub fn predict_probs(&self, batch: &SeqBatch) -> Matrix {
        let mut scratch = SeqScratch::default();
        let view = SeqView { ids: &batch.ids, gaps: &batch.gaps, targets: &[] };
        let indices: Vec<usize> = (0..batch.len()).collect();
        self.predict_probs_view(&view, &indices, &mut scratch).clone()
    }

    /// Mean cross-entropy of the batch without updating any weights.
    pub fn evaluate_loss(&self, batch: &SeqBatch, targets: &[usize]) -> f32 {
        let mut scratch = SeqScratch::default();
        let view = SeqView { ids: &batch.ids, gaps: &batch.gaps, targets };
        let indices: Vec<usize> = (0..batch.len()).collect();
        self.forward_scratch(&view, &indices, &mut scratch);
        loss::softmax_cross_entropy(scratch.head_cache.output(), targets).0
    }

    /// One optimizer step on a mini-batch; returns the pre-update loss.
    ///
    /// Thin compatibility wrapper over the [`BatchLoss`] path used by
    /// `Trainer`; the optimizer must have been built for this model's
    /// parameter layout (see [`SequenceModel::param_shapes`]).
    pub fn train_step(
        &mut self,
        batch: &SeqBatch,
        targets: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        assert_eq!(targets.len(), batch.len(), "train_step: target count mismatch");
        let mut grads = GradientSet::new(&self.param_shapes());
        let view = SeqView { ids: &batch.ids, gaps: &batch.gaps, targets };
        let indices: Vec<usize> = (0..batch.len()).collect();
        let loss_value = self.batch_gradients(&view, &indices, &mut grads);
        let frozen = self.frozen_param_count();
        clip_and_apply(self, &mut grads, frozen, DEFAULT_GRAD_CLIP, optimizer);
        loss_value
    }

    /// How many leading parameters belong to the frozen bottom components.
    fn frozen_param_count(&self) -> usize {
        // Component i owns: embedding -> 1 param, each LSTM -> 3, head -> 2.
        let mut count = 0;
        for comp in 0..self.frozen_bottom {
            count += if comp == 0 { 1 } else { 3 };
        }
        count
    }

    /// Shapes of all parameters in optimizer order.
    pub fn param_shapes(&self) -> Vec<(usize, usize)> {
        self.params().iter().map(|p| p.shape()).collect()
    }

    /// Serializes the model (architecture + weights).
    pub fn to_checkpoint(&self) -> Checkpoint {
        Checkpoint {
            tag: "sequence-model".to_string(),
            dims: vec![
                self.cfg.vocab,
                self.cfg.embed_dim,
                self.cfg.hidden,
                self.cfg.lstm_layers,
                usize::from(self.cfg.use_gap_feature),
            ],
            params: self.params().iter().map(|p| MatrixDump::from_matrix(p)).collect(),
        }
    }

    /// Restores a model from a checkpoint produced by
    /// [`SequenceModel::to_checkpoint`], reporting structural problems
    /// (wrong tag, malformed dims, mismatched parameter shapes) as
    /// typed errors instead of panicking.
    pub fn try_from_checkpoint(ckpt: &Checkpoint) -> Result<Self, CheckpointError> {
        if ckpt.tag != "sequence-model" {
            return Err(CheckpointError::Invalid(format!(
                "expected tag \"sequence-model\", found {:?}",
                ckpt.tag
            )));
        }
        if ckpt.dims.len() != 5 {
            return Err(CheckpointError::Invalid(format!(
                "sequence-model checkpoint needs 5 dims, found {}",
                ckpt.dims.len()
            )));
        }
        if ckpt.dims[..4].contains(&0) {
            return Err(CheckpointError::Invalid(format!(
                "sequence-model dims must be non-zero, found {:?}",
                ckpt.dims
            )));
        }
        let cfg = SequenceModelConfig {
            vocab: ckpt.dims[0],
            embed_dim: ckpt.dims[1],
            hidden: ckpt.dims[2],
            lstm_layers: ckpt.dims[3],
            use_gap_feature: ckpt.dims[4] != 0,
        };
        let mut rng = rand::rngs::mock::StepRng::new(1, 1);
        let mut model = SequenceModel::new(cfg, &mut rng);
        restore_params(&mut model, ckpt)?;
        Ok(model)
    }

    /// Panicking convenience wrapper around
    /// [`SequenceModel::try_from_checkpoint`] for checkpoints known to
    /// be valid (e.g. built in-process).
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Self {
        SequenceModel::try_from_checkpoint(ckpt).expect("valid sequence-model checkpoint")
    }
}

impl Trainable for SequenceModel {
    fn params(&self) -> Vec<&Matrix> {
        let mut out = self.embedding.params();
        for l in &self.lstms {
            out.extend(l.params());
        }
        out.extend(self.head.params());
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out = self.embedding.params_mut();
        for l in &mut self.lstms {
            out.extend(l.params_mut());
        }
        out.extend(self.head.params_mut());
        out
    }
}

impl<'a> BatchLoss<SeqView<'a>> for SequenceModel {
    fn batch_gradients(
        &mut self,
        data: &SeqView<'a>,
        indices: &[usize],
        grads: &mut GradientSet,
    ) -> f32 {
        // Move the scratch out so the forward/backward helpers can borrow
        // `self` immutably alongside it.
        let mut s = mem::take(&mut self.scratch);
        let loss_sum = self.seq_grads_impl(data, indices, &mut s, grads, indices.len());
        self.scratch = s;
        loss_sum / indices.len() as f32
    }

    fn frozen_params(&self) -> usize {
        self.frozen_param_count()
    }
}

impl<'a> ShardedBatchLoss<SeqView<'a>> for SequenceModel {
    type Worker = SeqScratch;

    fn shard_gradients(
        &self,
        data: &SeqView<'a>,
        indices: &[usize],
        total: usize,
        worker: &mut SeqScratch,
        grads: &mut GradientSet,
    ) -> f32 {
        self.seq_grads_impl(data, indices, worker, grads, total)
    }
}

/// A plain multi-layer perceptron (chain of [`Dense`] layers).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    scratch: MlpScratch,
}

/// Reusable forward/backward buffers for [`Mlp`].
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    ws: Workspace,
    caches: Vec<DenseCache>,
    /// Ping-pong buffers for the layer-gradient chain.
    d_a: Matrix,
    d_b: Matrix,
    x: Matrix,
    target: Matrix,
}

/// A borrowed row-major dataset for MSE training: `x[i]` reconstructs to
/// `target[i]` (for an autoencoder both slices are the same).
#[derive(Debug, Clone, Copy)]
pub struct MseRows<'a> {
    /// Input rows.
    pub x: &'a [Vec<f32>],
    /// Target rows, parallel to `x`.
    pub target: &'a [Vec<f32>],
}

impl Mlp {
    /// Builds an MLP with the given layer widths and one activation for
    /// all hidden layers; the final layer uses `output_activation`.
    ///
    /// `widths = [in, h1, .., out]` produces `widths.len() - 1` layers.
    pub fn new(
        widths: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(widths.len() >= 2, "Mlp: need at least input and output widths");
        let mut layers = Vec::with_capacity(widths.len() - 1);
        for w in 0..widths.len() - 1 {
            let act = if w == widths.len() - 2 { output_activation } else { hidden_activation };
            layers.push(Dense::new(widths[w], widths[w + 1], act, rng));
        }
        Mlp { layers, scratch: MlpScratch::default() }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Inference forward pass.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.infer(&h);
        }
        h
    }

    /// Forward + MSE loss + backward for the inputs already staged in
    /// `s.x`/`s.target`, accumulating parameter gradients into `grads`.
    ///
    /// Shard-aware: gradients are normalized by `total_rows` (the whole
    /// batch) and the returned loss is the shard's unnormalized
    /// squared-error sum (see [`loss::mse_scaled_into`]).
    fn mse_gradients(&self, s: &mut MlpScratch, grads: &mut GradientSet, total_rows: usize) -> f32 {
        let n = self.layers.len();
        let MlpScratch { ws, caches, d_a, d_b, x, target } = s;
        if caches.len() != n {
            caches.truncate(n);
            caches.resize_with(n, DenseCache::default);
        }
        for (l, layer) in self.layers.iter().enumerate() {
            let (done, rest) = caches.split_at_mut(l);
            let input: &Matrix = if l == 0 { x } else { done[l - 1].output() };
            layer.forward_into(input, &mut rest[0]);
        }
        let loss_value = loss::mse_scaled_into(caches[n - 1].output(), target, d_a, total_rows);
        let slots = grads.slots_mut();
        for l in (0..n).rev() {
            let [dw, db] = &mut slots[2 * l..2 * l + 2] else { unreachable!() };
            if (n - 1 - l).is_multiple_of(2) {
                self.layers[l].backward_into(&caches[l], d_a, d_b, dw, db, ws);
            } else {
                self.layers[l].backward_into(&caches[l], d_b, d_a, dw, db, ws);
            }
        }
        loss_value
    }

    /// One MSE training step towards `target`; returns the pre-update loss.
    ///
    /// Thin compatibility wrapper over the [`BatchLoss`] path used by
    /// `Trainer`.
    pub fn train_step_mse(
        &mut self,
        x: &Matrix,
        target: &Matrix,
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        let mut grads = GradientSet::new(&Trainable::param_shapes(self));
        let mut s = mem::take(&mut self.scratch);
        s.x.copy_from(x);
        s.target.copy_from(target);
        let loss_sum = self.mse_gradients(&mut s, &mut grads, x.rows());
        self.scratch = s;
        clip_and_apply(self, &mut grads, 0, DEFAULT_GRAD_CLIP, optimizer);
        loss_sum / (x.rows() * self.out_dim()) as f32
    }

    /// Serializes the MLP (widths + activations are implied by the caller;
    /// we store per-layer shapes and the activation tags in `dims`).
    pub fn to_checkpoint(&self) -> Checkpoint {
        let mut dims = Vec::new();
        dims.push(self.layers.len());
        for l in &self.layers {
            dims.push(l.in_dim());
            dims.push(l.out_dim());
            dims.push(match l.activation() {
                Activation::Identity => 0,
                Activation::Sigmoid => 1,
                Activation::Tanh => 2,
                Activation::Relu => 3,
            });
        }
        Checkpoint {
            tag: "mlp".to_string(),
            dims,
            params: self.params().iter().map(|p| MatrixDump::from_matrix(p)).collect(),
        }
    }

    /// Restores an MLP from [`Mlp::to_checkpoint`] output, reporting
    /// structural problems as typed errors instead of panicking.
    pub fn try_from_checkpoint(ckpt: &Checkpoint) -> Result<Self, CheckpointError> {
        if ckpt.tag != "mlp" {
            return Err(CheckpointError::Invalid(format!(
                "expected tag \"mlp\", found {:?}",
                ckpt.tag
            )));
        }
        let n = *ckpt
            .dims
            .first()
            .ok_or_else(|| CheckpointError::Invalid("mlp checkpoint has empty dims".to_string()))?;
        if n == 0 || ckpt.dims.len() != 1 + 3 * n {
            return Err(CheckpointError::Invalid(format!(
                "mlp checkpoint with {} layers needs {} dims, found {}",
                n,
                1 + 3 * n.max(1),
                ckpt.dims.len()
            )));
        }
        let mut rng = rand::rngs::mock::StepRng::new(1, 1);
        let mut layers = Vec::with_capacity(n);
        for i in 0..n {
            let in_dim = ckpt.dims[1 + 3 * i];
            let out_dim = ckpt.dims[2 + 3 * i];
            let act = match ckpt.dims[3 + 3 * i] {
                0 => Activation::Identity,
                1 => Activation::Sigmoid,
                2 => Activation::Tanh,
                3 => Activation::Relu,
                other => {
                    return Err(CheckpointError::Invalid(format!(
                        "unknown activation tag {}",
                        other
                    )))
                }
            };
            layers.push(Dense::new(in_dim, out_dim, act, &mut rng));
        }
        let mut mlp = Mlp { layers, scratch: MlpScratch::default() };
        restore_params(&mut mlp, ckpt)?;
        Ok(mlp)
    }

    /// Panicking convenience wrapper around [`Mlp::try_from_checkpoint`]
    /// for checkpoints known to be valid (e.g. built in-process).
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Self {
        Mlp::try_from_checkpoint(ckpt).expect("valid mlp checkpoint")
    }
}

/// Copies checkpoint matrices into a freshly-built model, verifying the
/// parameter count and every matrix shape against the architecture the
/// dims describe.
pub(crate) fn restore_params<M: Trainable>(
    model: &mut M,
    ckpt: &Checkpoint,
) -> Result<(), CheckpointError> {
    let mut params = model.params_mut();
    if params.len() != ckpt.params.len() {
        return Err(CheckpointError::Invalid(format!(
            "architecture expects {} parameter matrices, checkpoint has {}",
            params.len(),
            ckpt.params.len()
        )));
    }
    for (p, dump) in params.iter_mut().zip(ckpt.params.iter()) {
        let restored = dump.to_matrix()?;
        if restored.shape() != p.shape() {
            return Err(CheckpointError::Invalid(format!(
                "parameter shape {:?} does not match architecture shape {:?}",
                (dump.rows, dump.cols),
                p.shape()
            )));
        }
        **p = restored;
    }
    Ok(())
}

impl Trainable for Mlp {
    fn params(&self) -> Vec<&Matrix> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }
}

impl<'a> BatchLoss<MseRows<'a>> for Mlp {
    fn batch_gradients(
        &mut self,
        data: &MseRows<'a>,
        indices: &[usize],
        grads: &mut GradientSet,
    ) -> f32 {
        let mut s = mem::take(&mut self.scratch);
        s.x.reset(indices.len(), self.in_dim());
        s.target.reset(indices.len(), self.out_dim());
        for (r, &i) in indices.iter().enumerate() {
            s.x.row_mut(r).copy_from_slice(&data.x[i]);
            s.target.row_mut(r).copy_from_slice(&data.target[i]);
        }
        let loss_sum = self.mse_gradients(&mut s, grads, indices.len());
        self.scratch = s;
        loss_sum / (indices.len() * self.out_dim()) as f32
    }
}

impl<'a> ShardedBatchLoss<MseRows<'a>> for Mlp {
    type Worker = MlpScratch;

    fn shard_gradients(
        &self,
        data: &MseRows<'a>,
        indices: &[usize],
        total: usize,
        worker: &mut MlpScratch,
        grads: &mut GradientSet,
    ) -> f32 {
        worker.x.reset(indices.len(), self.in_dim());
        worker.target.reset(indices.len(), self.out_dim());
        for (r, &i) in indices.iter().enumerate() {
            worker.x.row_mut(r).copy_from_slice(&data.x[i]);
            worker.target.row_mut(r).copy_from_slice(&data.target[i]);
        }
        self.mse_gradients(worker, grads, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use rand::{rngs::SmallRng, SeedableRng};

    fn toy_batch(window: usize, pattern: &[usize]) -> (SeqBatch, Vec<usize>) {
        // Sliding windows over a repeating pattern; the next id is always
        // deterministic, so the model should learn it nearly perfectly.
        let seq: Vec<usize> = pattern.iter().cycle().take(200).copied().collect();
        let mut ids = Vec::new();
        let mut gaps = Vec::new();
        let mut targets = Vec::new();
        for start in 0..seq.len() - window {
            ids.push(seq[start..start + window].to_vec());
            gaps.push(vec![0.5; window]);
            targets.push(seq[start + window]);
        }
        (SeqBatch { ids, gaps }, targets)
    }

    #[test]
    fn learns_a_deterministic_cycle() {
        let cfg = SequenceModelConfig {
            vocab: 4,
            embed_dim: 6,
            hidden: 12,
            lstm_layers: 2,
            use_gap_feature: true,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut model = SequenceModel::new(cfg, &mut rng);
        let (batch, targets) = toy_batch(5, &[0, 1, 2, 3]);
        let mut opt = Adam::new(0.01, &model.param_shapes());

        let first_loss = model.evaluate_loss(&batch, &targets);
        for _ in 0..60 {
            model.train_step(&batch, &targets, &mut opt);
        }
        let final_loss = model.evaluate_loss(&batch, &targets);
        assert!(
            final_loss < first_loss * 0.2,
            "loss did not drop: {} -> {}",
            first_loss,
            final_loss
        );

        // The argmax prediction should now follow the cycle.
        let probs = model.predict_probs(&batch);
        let preds = probs.argmax_rows();
        let correct = preds.iter().zip(targets.iter()).filter(|(p, t)| p == t).count();
        assert!(
            correct as f32 / targets.len() as f32 > 0.95,
            "accuracy {}/{}",
            correct,
            targets.len()
        );
    }

    #[test]
    fn probs_rows_are_distributions() {
        let mut rng = SmallRng::seed_from_u64(3);
        let model = SequenceModel::new(SequenceModelConfig::default(), &mut rng);
        let batch = SeqBatch {
            ids: vec![vec![1, 2, 3], vec![4, 5, 6]],
            gaps: vec![vec![0.1, 0.2, 0.3], vec![0.0, 0.0, 0.0]],
        };
        let probs = model.predict_probs(&batch);
        assert_eq!(probs.shape(), (2, 64));
        for r in 0..2 {
            let s: f32 = probs.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn frozen_bottom_components_do_not_move() {
        let cfg = SequenceModelConfig {
            vocab: 5,
            embed_dim: 4,
            hidden: 6,
            lstm_layers: 2,
            use_gap_feature: false,
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let mut model = SequenceModel::new(cfg, &mut rng);
        model.set_frozen_bottom(2); // freeze embedding + first LSTM

        let before: Vec<Vec<f32>> = model.params().iter().map(|p| p.as_slice().to_vec()).collect();
        let batch = SeqBatch { ids: vec![vec![0, 1, 2, 3]], gaps: vec![] };
        let mut opt = Adam::new(0.05, &model.param_shapes());
        for _ in 0..3 {
            model.train_step(&batch, &[4], &mut opt);
        }
        let after: Vec<Vec<f32>> = model.params().iter().map(|p| p.as_slice().to_vec()).collect();

        // Embedding (1 param) + LSTM0 (3 params) frozen; the rest must move.
        for i in 0..4 {
            assert_eq!(before[i], after[i], "frozen param {} moved", i);
        }
        assert_ne!(before[4], after[4], "unfrozen LSTM1 did not move");
        assert_ne!(before[7], after[7], "unfrozen head did not move");
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let mut rng = SmallRng::seed_from_u64(19);
        let model = SequenceModel::new(SequenceModelConfig::default(), &mut rng);
        let batch = SeqBatch { ids: vec![vec![7, 8, 9, 10]], gaps: vec![vec![0.1, 0.4, 0.2, 0.9]] };
        let original = model.predict_probs(&batch);
        let restored = SequenceModel::from_checkpoint(&model.to_checkpoint());
        let roundtrip = restored.predict_probs(&batch);
        assert_eq!(original.as_slice(), roundtrip.as_slice());
    }

    #[test]
    fn mlp_autoencoder_reduces_reconstruction_error() {
        let mut rng = SmallRng::seed_from_u64(23);
        let mut ae = Mlp::new(&[8, 4, 2, 4, 8], Activation::Tanh, Activation::Identity, &mut rng);
        // Data on a 1-D manifold: x = [t, 2t, .., 8t].
        let x = Matrix::from_fn(16, 8, |r, c| (r as f32 / 16.0) * (c + 1) as f32 * 0.1);
        let mut opt = Adam::new(0.01, &ae.params().iter().map(|p| p.shape()).collect::<Vec<_>>());
        let first = ae.train_step_mse(&x, &x, &mut opt);
        let mut last = first;
        for _ in 0..200 {
            last = ae.train_step_mse(&x, &x, &mut opt);
        }
        assert!(last < first * 0.2, "AE loss did not drop: {} -> {}", first, last);
    }

    #[test]
    fn mlp_checkpoint_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(29);
        let mlp = Mlp::new(&[5, 3, 5], Activation::Relu, Activation::Identity, &mut rng);
        let x = nfv_tensor::uniform_in(4, 5, -1.0, 1.0, &mut rng);
        let restored = Mlp::from_checkpoint(&mlp.to_checkpoint());
        assert_eq!(mlp.infer(&x).as_slice(), restored.infer(&x).as_slice());
    }

    #[test]
    #[should_panic(expected = "ragged windows")]
    fn ragged_batch_is_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let model = SequenceModel::new(SequenceModelConfig::default(), &mut rng);
        let batch = SeqBatch {
            ids: vec![vec![1, 2, 3], vec![1, 2]],
            gaps: vec![vec![0.0; 3], vec![0.0; 2]],
        };
        let _ = model.predict_probs(&batch);
    }
}
