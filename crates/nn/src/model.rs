//! Model containers: the paper's next-template sequence network and a
//! plain MLP used to build the autoencoder baseline.

use crate::checkpoint::{Checkpoint, CheckpointError, MatrixDump};
use crate::dense::{Dense, DenseCache};
use crate::embedding::Embedding;
use crate::loss;
use crate::lstm::{LstmLayer, LstmSeqCache};
use crate::optimizer::Optimizer;
use crate::Activation;
use crate::Trainable;
use nfv_tensor::Matrix;
use rand::Rng;

/// Gradient-clipping bound applied to every parameter gradient before an
/// optimizer step; standard practice for LSTM training.
const GRAD_CLIP: f32 = 5.0;

/// Hyper-parameters of [`SequenceModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceModelConfig {
    /// Template vocabulary size (output classes).
    pub vocab: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Hidden units per LSTM layer.
    pub hidden: usize,
    /// Number of stacked LSTM layers (the paper uses 2).
    pub lstm_layers: usize,
    /// Whether to append the normalized inter-arrival gap to each step's
    /// input (the paper's input tuples are `(m_i, t_i - t_{i-1})`).
    pub use_gap_feature: bool,
}

impl Default for SequenceModelConfig {
    fn default() -> Self {
        SequenceModelConfig {
            vocab: 64,
            embed_dim: 16,
            hidden: 32,
            lstm_layers: 2,
            use_gap_feature: true,
        }
    }
}

/// The paper's anomaly-detection network: `Embedding (+ gap feature) ->
/// LSTM x N -> Dense`, predicting a probability distribution over the
/// next syslog template.
///
/// Components are ordered bottom-to-top as
/// `[embedding, lstm_0, .., lstm_{N-1}, head]`; transfer learning freezes
/// a prefix of that list via [`SequenceModel::set_frozen_bottom`] and
/// fine-tunes the rest (§4.3 of the paper).
#[derive(Debug, Clone)]
pub struct SequenceModel {
    cfg: SequenceModelConfig,
    embedding: Embedding,
    lstms: Vec<LstmLayer>,
    head: Dense,
    frozen_bottom: usize,
}

/// One training/inference batch of fixed-length windows.
///
/// `ids[b]` is the template-id window for sample `b`; all windows must
/// share the same length. `gaps[b][t]` is the normalized inter-arrival
/// gap preceding `ids[b][t]` and is required when the model was built
/// with `use_gap_feature`.
#[derive(Debug, Clone, Default)]
pub struct SeqBatch {
    /// Template-id windows, one per sample.
    pub ids: Vec<Vec<usize>>,
    /// Normalized gap features, parallel to `ids` (may be empty when the
    /// model does not use the gap feature).
    pub gaps: Vec<Vec<f32>>,
}

impl SeqBatch {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Window length (0 for an empty batch).
    pub fn window(&self) -> usize {
        self.ids.first().map_or(0, |w| w.len())
    }
}

struct ForwardCache {
    step_ids: Vec<Vec<usize>>,
    lstm_caches: Vec<LstmSeqCache>,
    head_cache: DenseCache,
    batch: usize,
    t_len: usize,
}

impl SequenceModel {
    /// Builds a model with freshly initialized parameters.
    pub fn new(cfg: SequenceModelConfig, rng: &mut impl Rng) -> Self {
        assert!(cfg.vocab > 1, "SequenceModel: vocabulary must have at least 2 classes");
        assert!(cfg.lstm_layers >= 1, "SequenceModel: need at least one LSTM layer");
        let embedding = Embedding::new(cfg.vocab, cfg.embed_dim, rng);
        let in0 = cfg.embed_dim + usize::from(cfg.use_gap_feature);
        let mut lstms = Vec::with_capacity(cfg.lstm_layers);
        for l in 0..cfg.lstm_layers {
            let input = if l == 0 { in0 } else { cfg.hidden };
            lstms.push(LstmLayer::new(input, cfg.hidden, rng));
        }
        let head = Dense::new(cfg.hidden, cfg.vocab, Activation::Identity, rng);
        SequenceModel { cfg, embedding, lstms, head, frozen_bottom: 0 }
    }

    /// The model's configuration.
    pub fn config(&self) -> &SequenceModelConfig {
        &self.cfg
    }

    /// Number of components (embedding + LSTM layers + head).
    pub fn component_count(&self) -> usize {
        2 + self.lstms.len()
    }

    /// Freezes the bottom `n` components (0 = train everything). Frozen
    /// components receive no optimizer updates — the transfer-learning
    /// student copies the teacher and fine-tunes only the top layers.
    pub fn set_frozen_bottom(&mut self, n: usize) {
        assert!(
            n < self.component_count(),
            "cannot freeze all {} components",
            self.component_count()
        );
        self.frozen_bottom = n;
    }

    /// Currently frozen bottom-component count.
    pub fn frozen_bottom(&self) -> usize {
        self.frozen_bottom
    }

    fn check_batch(&self, batch: &SeqBatch) {
        assert!(!batch.is_empty(), "SequenceModel: empty batch");
        let t_len = batch.window();
        assert!(t_len > 0, "SequenceModel: zero-length windows");
        for w in &batch.ids {
            assert_eq!(w.len(), t_len, "SequenceModel: ragged windows");
        }
        if self.cfg.use_gap_feature {
            assert_eq!(batch.gaps.len(), batch.ids.len(), "SequenceModel: gaps required");
            for g in &batch.gaps {
                assert_eq!(g.len(), t_len, "SequenceModel: ragged gap rows");
            }
        }
    }

    fn forward_cached(&self, batch: &SeqBatch) -> (Matrix, ForwardCache) {
        self.check_batch(batch);
        let b = batch.len();
        let t_len = batch.window();

        // Per-step inputs: embed the t-th id of every sample, then append
        // the gap column when configured.
        let mut xs: Vec<Matrix> = Vec::with_capacity(t_len);
        let mut step_ids: Vec<Vec<usize>> = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let ids_t: Vec<usize> = batch.ids.iter().map(|w| w[t]).collect();
            let emb = self.embedding.forward(&ids_t);
            let x = if self.cfg.use_gap_feature {
                let gap_col = Matrix::from_vec(b, 1, batch.gaps.iter().map(|g| g[t]).collect());
                Matrix::hstack(&[&emb, &gap_col])
            } else {
                emb
            };
            xs.push(x);
            step_ids.push(ids_t);
        }

        let mut lstm_caches = Vec::with_capacity(self.lstms.len());
        let mut hs = xs;
        for lstm in &self.lstms {
            let (out, cache) = lstm.forward_seq(&hs);
            lstm_caches.push(cache);
            hs = out;
        }

        let last_h = hs.pop().expect("non-empty sequence");
        let (logits, head_cache) = self.head.forward(&last_h);
        (logits, ForwardCache { step_ids, lstm_caches, head_cache, batch: b, t_len })
    }

    /// Probability distribution over the next template for each window
    /// (`B x vocab`).
    pub fn predict_probs(&self, batch: &SeqBatch) -> Matrix {
        let (logits, _) = self.forward_cached(batch);
        loss::softmax_probs(&logits)
    }

    /// Mean cross-entropy of the batch without updating any weights.
    pub fn evaluate_loss(&self, batch: &SeqBatch, targets: &[usize]) -> f32 {
        let (logits, _) = self.forward_cached(batch);
        loss::softmax_cross_entropy(&logits, targets).0
    }

    /// One optimizer step on a mini-batch; returns the pre-update loss.
    ///
    /// The optimizer must have been built for this model's parameter
    /// layout (see [`SequenceModel::param_shapes`]).
    pub fn train_step(
        &mut self,
        batch: &SeqBatch,
        targets: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        assert_eq!(targets.len(), batch.len(), "train_step: target count mismatch");
        let (logits, cache) = self.forward_cached(batch);
        let (loss_value, dlogits) = loss::softmax_cross_entropy(&logits, targets);

        // Head backward.
        let (dh_last, head_grads) = self.head.backward(&cache.head_cache, &dlogits);

        // BPTT down the LSTM stack: only the last step feeds the loss.
        let mut d_hs: Vec<Matrix> =
            (0..cache.t_len).map(|_| Matrix::zeros(cache.batch, self.cfg.hidden)).collect();
        *d_hs.last_mut().expect("non-empty") = dh_last;

        let mut lstm_grads = Vec::with_capacity(self.lstms.len());
        for (lstm, lcache) in self.lstms.iter().zip(cache.lstm_caches.iter()).rev() {
            let (dxs, grads) = lstm.backward_seq(lcache, &d_hs);
            lstm_grads.push(grads);
            d_hs = dxs;
        }
        lstm_grads.reverse();

        // Embedding backward: strip the gap column when present.
        let mut demb_table = Matrix::zeros(self.cfg.vocab, self.cfg.embed_dim);
        for (t, dx) in d_hs.iter().enumerate() {
            let demb_rows = if self.cfg.use_gap_feature {
                let mut m = Matrix::zeros(cache.batch, self.cfg.embed_dim);
                for r in 0..cache.batch {
                    m.row_mut(r).copy_from_slice(&dx.row(r)[..self.cfg.embed_dim]);
                }
                m
            } else {
                dx.clone()
            };
            let g = self.embedding.backward(&cache.step_ids[t], &demb_rows);
            demb_table.add_assign(&g.dtable);
        }

        // Assemble gradients in parameter order, clip, mask frozen
        // components, and step.
        let mut grads_owned: Vec<Matrix> = Vec::new();
        grads_owned.push(demb_table);
        for g in &lstm_grads {
            grads_owned.push(g.dwx.clone());
            grads_owned.push(g.dwh.clone());
            grads_owned.push(g.db.clone());
        }
        grads_owned.push(head_grads.dw);
        grads_owned.push(head_grads.db);
        for g in &mut grads_owned {
            g.clip_inplace(GRAD_CLIP);
        }

        let frozen_params = self.frozen_param_count();
        let grad_refs: Vec<Option<&Matrix>> = grads_owned
            .iter()
            .enumerate()
            .map(|(i, g)| if i < frozen_params { None } else { Some(g) })
            .collect();
        let mut params = self.params_mut();
        optimizer.step(&mut params, &grad_refs);

        loss_value
    }

    /// How many leading parameters belong to the frozen bottom components.
    fn frozen_param_count(&self) -> usize {
        // Component i owns: embedding -> 1 param, each LSTM -> 3, head -> 2.
        let mut count = 0;
        for comp in 0..self.frozen_bottom {
            count += if comp == 0 { 1 } else { 3 };
        }
        count
    }

    /// Shapes of all parameters in optimizer order.
    pub fn param_shapes(&self) -> Vec<(usize, usize)> {
        self.params().iter().map(|p| p.shape()).collect()
    }

    /// Serializes the model (architecture + weights).
    pub fn to_checkpoint(&self) -> Checkpoint {
        Checkpoint {
            tag: "sequence-model".to_string(),
            dims: vec![
                self.cfg.vocab,
                self.cfg.embed_dim,
                self.cfg.hidden,
                self.cfg.lstm_layers,
                usize::from(self.cfg.use_gap_feature),
            ],
            params: self.params().iter().map(|p| MatrixDump::from_matrix(p)).collect(),
        }
    }

    /// Restores a model from a checkpoint produced by
    /// [`SequenceModel::to_checkpoint`], reporting structural problems
    /// (wrong tag, malformed dims, mismatched parameter shapes) as
    /// typed errors instead of panicking.
    pub fn try_from_checkpoint(ckpt: &Checkpoint) -> Result<Self, CheckpointError> {
        if ckpt.tag != "sequence-model" {
            return Err(CheckpointError::Invalid(format!(
                "expected tag \"sequence-model\", found {:?}",
                ckpt.tag
            )));
        }
        if ckpt.dims.len() != 5 {
            return Err(CheckpointError::Invalid(format!(
                "sequence-model checkpoint needs 5 dims, found {}",
                ckpt.dims.len()
            )));
        }
        if ckpt.dims[..4].contains(&0) {
            return Err(CheckpointError::Invalid(format!(
                "sequence-model dims must be non-zero, found {:?}",
                ckpt.dims
            )));
        }
        let cfg = SequenceModelConfig {
            vocab: ckpt.dims[0],
            embed_dim: ckpt.dims[1],
            hidden: ckpt.dims[2],
            lstm_layers: ckpt.dims[3],
            use_gap_feature: ckpt.dims[4] != 0,
        };
        let mut rng = rand::rngs::mock::StepRng::new(1, 1);
        let mut model = SequenceModel::new(cfg, &mut rng);
        restore_params(&mut model, ckpt)?;
        Ok(model)
    }

    /// Panicking convenience wrapper around
    /// [`SequenceModel::try_from_checkpoint`] for checkpoints known to
    /// be valid (e.g. built in-process).
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Self {
        SequenceModel::try_from_checkpoint(ckpt).expect("valid sequence-model checkpoint")
    }
}

impl Trainable for SequenceModel {
    fn params(&self) -> Vec<&Matrix> {
        let mut out = self.embedding.params();
        for l in &self.lstms {
            out.extend(l.params());
        }
        out.extend(self.head.params());
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out = self.embedding.params_mut();
        for l in &mut self.lstms {
            out.extend(l.params_mut());
        }
        out.extend(self.head.params_mut());
        out
    }
}

/// A plain multi-layer perceptron (chain of [`Dense`] layers).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths and one activation for
    /// all hidden layers; the final layer uses `output_activation`.
    ///
    /// `widths = [in, h1, .., out]` produces `widths.len() - 1` layers.
    pub fn new(
        widths: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(widths.len() >= 2, "Mlp: need at least input and output widths");
        let mut layers = Vec::with_capacity(widths.len() - 1);
        for w in 0..widths.len() - 1 {
            let act = if w == widths.len() - 2 { output_activation } else { hidden_activation };
            layers.push(Dense::new(widths[w], widths[w + 1], act, rng));
        }
        Mlp { layers }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Inference forward pass.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.infer(&h);
        }
        h
    }

    /// One MSE training step towards `target`; returns the pre-update loss.
    pub fn train_step_mse(
        &mut self,
        x: &Matrix,
        target: &Matrix,
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for layer in &self.layers {
            let (out, cache) = layer.forward(&h);
            caches.push(cache);
            h = out;
        }
        let (loss_value, mut d) = loss::mse(&h, target);
        let mut grads_rev = Vec::with_capacity(self.layers.len());
        for (layer, cache) in self.layers.iter().zip(caches.iter()).rev() {
            let (dx, g) = layer.backward(cache, &d);
            grads_rev.push(g);
            d = dx;
        }
        grads_rev.reverse();
        let mut grads_owned: Vec<Matrix> = Vec::new();
        for g in grads_rev {
            let mut dw = g.dw;
            let mut db = g.db;
            dw.clip_inplace(GRAD_CLIP);
            db.clip_inplace(GRAD_CLIP);
            grads_owned.push(dw);
            grads_owned.push(db);
        }
        let grad_refs: Vec<Option<&Matrix>> = grads_owned.iter().map(Some).collect();
        let mut params = self.params_mut();
        optimizer.step(&mut params, &grad_refs);
        loss_value
    }

    /// Serializes the MLP (widths + activations are implied by the caller;
    /// we store per-layer shapes and the activation tags in `dims`).
    pub fn to_checkpoint(&self) -> Checkpoint {
        let mut dims = Vec::new();
        dims.push(self.layers.len());
        for l in &self.layers {
            dims.push(l.in_dim());
            dims.push(l.out_dim());
            dims.push(match l.activation() {
                Activation::Identity => 0,
                Activation::Sigmoid => 1,
                Activation::Tanh => 2,
                Activation::Relu => 3,
            });
        }
        Checkpoint {
            tag: "mlp".to_string(),
            dims,
            params: self.params().iter().map(|p| MatrixDump::from_matrix(p)).collect(),
        }
    }

    /// Restores an MLP from [`Mlp::to_checkpoint`] output, reporting
    /// structural problems as typed errors instead of panicking.
    pub fn try_from_checkpoint(ckpt: &Checkpoint) -> Result<Self, CheckpointError> {
        if ckpt.tag != "mlp" {
            return Err(CheckpointError::Invalid(format!(
                "expected tag \"mlp\", found {:?}",
                ckpt.tag
            )));
        }
        let n = *ckpt
            .dims
            .first()
            .ok_or_else(|| CheckpointError::Invalid("mlp checkpoint has empty dims".to_string()))?;
        if n == 0 || ckpt.dims.len() != 1 + 3 * n {
            return Err(CheckpointError::Invalid(format!(
                "mlp checkpoint with {} layers needs {} dims, found {}",
                n,
                1 + 3 * n.max(1),
                ckpt.dims.len()
            )));
        }
        let mut rng = rand::rngs::mock::StepRng::new(1, 1);
        let mut layers = Vec::with_capacity(n);
        for i in 0..n {
            let in_dim = ckpt.dims[1 + 3 * i];
            let out_dim = ckpt.dims[2 + 3 * i];
            let act = match ckpt.dims[3 + 3 * i] {
                0 => Activation::Identity,
                1 => Activation::Sigmoid,
                2 => Activation::Tanh,
                3 => Activation::Relu,
                other => {
                    return Err(CheckpointError::Invalid(format!(
                        "unknown activation tag {}",
                        other
                    )))
                }
            };
            layers.push(Dense::new(in_dim, out_dim, act, &mut rng));
        }
        let mut mlp = Mlp { layers };
        restore_params(&mut mlp, ckpt)?;
        Ok(mlp)
    }

    /// Panicking convenience wrapper around [`Mlp::try_from_checkpoint`]
    /// for checkpoints known to be valid (e.g. built in-process).
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Self {
        Mlp::try_from_checkpoint(ckpt).expect("valid mlp checkpoint")
    }
}

/// Copies checkpoint matrices into a freshly-built model, verifying the
/// parameter count and every matrix shape against the architecture the
/// dims describe.
fn restore_params<M: Trainable>(model: &mut M, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    let mut params = model.params_mut();
    if params.len() != ckpt.params.len() {
        return Err(CheckpointError::Invalid(format!(
            "architecture expects {} parameter matrices, checkpoint has {}",
            params.len(),
            ckpt.params.len()
        )));
    }
    for (p, dump) in params.iter_mut().zip(ckpt.params.iter()) {
        let restored = dump.to_matrix()?;
        if restored.shape() != p.shape() {
            return Err(CheckpointError::Invalid(format!(
                "parameter shape {:?} does not match architecture shape {:?}",
                (dump.rows, dump.cols),
                p.shape()
            )));
        }
        **p = restored;
    }
    Ok(())
}

impl Trainable for Mlp {
    fn params(&self) -> Vec<&Matrix> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use rand::{rngs::SmallRng, SeedableRng};

    fn toy_batch(window: usize, pattern: &[usize]) -> (SeqBatch, Vec<usize>) {
        // Sliding windows over a repeating pattern; the next id is always
        // deterministic, so the model should learn it nearly perfectly.
        let seq: Vec<usize> = pattern.iter().cycle().take(200).copied().collect();
        let mut ids = Vec::new();
        let mut gaps = Vec::new();
        let mut targets = Vec::new();
        for start in 0..seq.len() - window {
            ids.push(seq[start..start + window].to_vec());
            gaps.push(vec![0.5; window]);
            targets.push(seq[start + window]);
        }
        (SeqBatch { ids, gaps }, targets)
    }

    #[test]
    fn learns_a_deterministic_cycle() {
        let cfg = SequenceModelConfig {
            vocab: 4,
            embed_dim: 6,
            hidden: 12,
            lstm_layers: 2,
            use_gap_feature: true,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut model = SequenceModel::new(cfg, &mut rng);
        let (batch, targets) = toy_batch(5, &[0, 1, 2, 3]);
        let mut opt = Adam::new(0.01, &model.param_shapes());

        let first_loss = model.evaluate_loss(&batch, &targets);
        for _ in 0..60 {
            model.train_step(&batch, &targets, &mut opt);
        }
        let final_loss = model.evaluate_loss(&batch, &targets);
        assert!(
            final_loss < first_loss * 0.2,
            "loss did not drop: {} -> {}",
            first_loss,
            final_loss
        );

        // The argmax prediction should now follow the cycle.
        let probs = model.predict_probs(&batch);
        let preds = probs.argmax_rows();
        let correct = preds.iter().zip(targets.iter()).filter(|(p, t)| p == t).count();
        assert!(
            correct as f32 / targets.len() as f32 > 0.95,
            "accuracy {}/{}",
            correct,
            targets.len()
        );
    }

    #[test]
    fn probs_rows_are_distributions() {
        let mut rng = SmallRng::seed_from_u64(3);
        let model = SequenceModel::new(SequenceModelConfig::default(), &mut rng);
        let batch = SeqBatch {
            ids: vec![vec![1, 2, 3], vec![4, 5, 6]],
            gaps: vec![vec![0.1, 0.2, 0.3], vec![0.0, 0.0, 0.0]],
        };
        let probs = model.predict_probs(&batch);
        assert_eq!(probs.shape(), (2, 64));
        for r in 0..2 {
            let s: f32 = probs.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn frozen_bottom_components_do_not_move() {
        let cfg = SequenceModelConfig {
            vocab: 5,
            embed_dim: 4,
            hidden: 6,
            lstm_layers: 2,
            use_gap_feature: false,
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let mut model = SequenceModel::new(cfg, &mut rng);
        model.set_frozen_bottom(2); // freeze embedding + first LSTM

        let before: Vec<Vec<f32>> = model.params().iter().map(|p| p.as_slice().to_vec()).collect();
        let batch = SeqBatch { ids: vec![vec![0, 1, 2, 3]], gaps: vec![] };
        let mut opt = Adam::new(0.05, &model.param_shapes());
        for _ in 0..3 {
            model.train_step(&batch, &[4], &mut opt);
        }
        let after: Vec<Vec<f32>> = model.params().iter().map(|p| p.as_slice().to_vec()).collect();

        // Embedding (1 param) + LSTM0 (3 params) frozen; the rest must move.
        for i in 0..4 {
            assert_eq!(before[i], after[i], "frozen param {} moved", i);
        }
        assert_ne!(before[4], after[4], "unfrozen LSTM1 did not move");
        assert_ne!(before[7], after[7], "unfrozen head did not move");
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let mut rng = SmallRng::seed_from_u64(19);
        let model = SequenceModel::new(SequenceModelConfig::default(), &mut rng);
        let batch = SeqBatch { ids: vec![vec![7, 8, 9, 10]], gaps: vec![vec![0.1, 0.4, 0.2, 0.9]] };
        let original = model.predict_probs(&batch);
        let restored = SequenceModel::from_checkpoint(&model.to_checkpoint());
        let roundtrip = restored.predict_probs(&batch);
        assert_eq!(original.as_slice(), roundtrip.as_slice());
    }

    #[test]
    fn mlp_autoencoder_reduces_reconstruction_error() {
        let mut rng = SmallRng::seed_from_u64(23);
        let mut ae = Mlp::new(&[8, 4, 2, 4, 8], Activation::Tanh, Activation::Identity, &mut rng);
        // Data on a 1-D manifold: x = [t, 2t, .., 8t].
        let x = Matrix::from_fn(16, 8, |r, c| (r as f32 / 16.0) * (c + 1) as f32 * 0.1);
        let mut opt = Adam::new(0.01, &ae.params().iter().map(|p| p.shape()).collect::<Vec<_>>());
        let first = ae.train_step_mse(&x, &x, &mut opt);
        let mut last = first;
        for _ in 0..200 {
            last = ae.train_step_mse(&x, &x, &mut opt);
        }
        assert!(last < first * 0.2, "AE loss did not drop: {} -> {}", first, last);
    }

    #[test]
    fn mlp_checkpoint_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(29);
        let mlp = Mlp::new(&[5, 3, 5], Activation::Relu, Activation::Identity, &mut rng);
        let x = nfv_tensor::uniform_in(4, 5, -1.0, 1.0, &mut rng);
        let restored = Mlp::from_checkpoint(&mlp.to_checkpoint());
        assert_eq!(mlp.infer(&x).as_slice(), restored.infer(&x).as_slice());
    }

    #[test]
    #[should_panic(expected = "ragged windows")]
    fn ragged_batch_is_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let model = SequenceModel::new(SequenceModelConfig::default(), &mut rng);
        let batch = SeqBatch {
            ids: vec![vec![1, 2, 3], vec![1, 2]],
            gaps: vec![vec![0.0; 3], vec![0.0; 2]],
        };
        let _ = model.predict_probs(&batch);
    }
}
