//! Fully-connected layer with explicit forward/backward passes.

use crate::activation::Activation;
use crate::Trainable;
use nfv_tensor::{xavier_uniform, Matrix, Workspace};
use rand::Rng;

/// A fully-connected layer `y = act(x W + b)`.
///
/// Weights are stored input-major (`in_dim x out_dim`) so a batch `x`
/// of shape `B x in_dim` produces `B x out_dim` via a single matmul.
/// The bias is kept as a `1 x out_dim` matrix so that optimizers can treat
/// every parameter uniformly.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Matrix,
    b: Matrix,
    activation: Activation,
}

/// Values captured during [`Dense::forward`] that the backward pass needs.
/// Reusable across steps: [`Dense::forward_into`] reshapes the buffers in
/// place instead of reallocating.
#[derive(Debug, Clone, Default)]
pub struct DenseCache {
    /// The layer input (`B x in_dim`).
    x: Matrix,
    /// The activated output (`B x out_dim`).
    y: Matrix,
}

impl DenseCache {
    /// The activated output of the captured forward pass.
    pub fn output(&self) -> &Matrix {
        &self.y
    }
}

/// Parameter gradients produced by [`Dense::backward`], in the same order
/// as [`Dense::params`].
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// Gradient w.r.t. the weight matrix.
    pub dw: Matrix,
    /// Gradient w.r.t. the bias row.
    pub db: Matrix,
}

impl Dense {
    /// New layer with Xavier-initialized weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        Dense { w: xavier_uniform(in_dim, out_dim, rng), b: Matrix::zeros(1, out_dim), activation }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass over a batch; returns the output and the cache needed
    /// by [`Dense::backward`].
    pub fn forward(&self, x: &Matrix) -> (Matrix, DenseCache) {
        let mut cache = DenseCache::default();
        self.forward_into(x, &mut cache);
        (cache.y.clone(), cache)
    }

    /// Allocation-free forward pass writing into a reusable cache; the
    /// output lives at `cache.output()`.
    pub fn forward_into(&self, x: &Matrix, cache: &mut DenseCache) {
        assert_eq!(
            x.cols(),
            self.in_dim(),
            "Dense::forward: input width {} != layer in_dim {}",
            x.cols(),
            self.in_dim()
        );
        cache.x.copy_from(x);
        x.matmul_into(&self.w, &mut cache.y);
        cache.y.add_row_broadcast(self.b.row(0));
        self.activation.apply_inplace(&mut cache.y);
    }

    /// Inference-only forward pass (no cache).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(self.b.row(0));
        self.activation.apply_inplace(&mut y);
        y
    }

    /// Backward pass: given `d_out = dL/dy`, returns `dL/dx` and the
    /// parameter gradients.
    pub fn backward(&self, cache: &DenseCache, d_out: &Matrix) -> (Matrix, DenseGrads) {
        let mut ws = Workspace::new();
        let mut dx = Matrix::default();
        let mut dw = Matrix::zeros(self.w.rows(), self.w.cols());
        let mut db = Matrix::zeros(1, self.out_dim());
        self.backward_into(cache, d_out, &mut dx, &mut dw, &mut db, &mut ws);
        (dx, DenseGrads { dw, db })
    }

    /// Allocation-free backward pass. Writes `dL/dx` into `dx` and
    /// *accumulates* the parameter gradients into `dw`/`db` (callers zero
    /// them once per batch, not per layer invocation).
    pub fn backward_into(
        &self,
        cache: &DenseCache,
        d_out: &Matrix,
        dx: &mut Matrix,
        dw: &mut Matrix,
        db: &mut Matrix,
        ws: &mut Workspace,
    ) {
        assert_eq!(d_out.shape(), cache.y.shape(), "Dense::backward: shape mismatch");
        assert_eq!(dw.shape(), self.w.shape(), "Dense::backward: dw shape mismatch");
        assert_eq!(db.shape(), self.b.shape(), "Dense::backward: db shape mismatch");
        // dL/dz where z is the pre-activation, using f'(z) expressed via y.
        let mut dz = ws.take(d_out.rows(), d_out.cols());
        dz.copy_from(d_out);
        if self.activation != Activation::Identity {
            for (d, &y) in dz.as_mut_slice().iter_mut().zip(cache.y.as_slice().iter()) {
                *d *= self.activation.derivative_from_output(y);
            }
        }
        cache.x.matmul_tn_acc(&dz, dw);
        dz.sum_rows_acc(db);
        let mut wt = ws.take(self.w.cols(), self.w.rows());
        self.w.transpose_into(&mut wt);
        dz.matmul_into(&wt, dx);
        ws.recycle(dz);
        ws.recycle(wt);
    }
}

impl Trainable for Dense {
    fn params(&self) -> Vec<&Matrix> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn scalar_loss(y: &Matrix) -> f32 {
        // Simple quadratic loss so that dL/dy = y.
        0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut layer = Dense::new(3, 2, Activation::Identity, &mut rng);
        // Zero the weights; output should equal the bias.
        layer.params_mut()[0].fill_zero();
        layer.params_mut()[1].set_row(0, &[1.5, -2.5]);
        let x = Matrix::filled(4, 3, 1.0);
        let (y, _) = layer.forward(&x);
        assert_eq!(y.shape(), (4, 2));
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.5, -2.5]);
        }
    }

    #[test]
    fn gradient_check_weights_and_bias() {
        for &act in &[Activation::Identity, Activation::Tanh, Activation::Sigmoid] {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut layer = Dense::new(4, 3, act, &mut rng);
            let x = nfv_tensor::uniform_in(5, 4, -1.0, 1.0, &mut rng);

            let (y, cache) = layer.forward(&x);
            let d_out = y.clone(); // dL/dy for L = 0.5*||y||^2
            let (_, grads) = layer.backward(&cache, &d_out);

            let eps = 1e-2f32;
            // Check a sample of weight entries numerically.
            for &(pi, idx) in &[(0usize, 0usize), (0, 5), (0, 11), (1, 0), (1, 2)] {
                let analytic =
                    if pi == 0 { grads.dw.as_slice()[idx] } else { grads.db.as_slice()[idx] };
                let orig = layer.params()[pi].as_slice()[idx];
                layer.params_mut()[pi].as_mut_slice()[idx] = orig + eps;
                let plus = scalar_loss(&layer.forward(&x).0);
                layer.params_mut()[pi].as_mut_slice()[idx] = orig - eps;
                let minus = scalar_loss(&layer.forward(&x).0);
                layer.params_mut()[pi].as_mut_slice()[idx] = orig;
                let numeric = (plus - minus) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "{:?} param {} idx {}: analytic {} vs numeric {}",
                    act,
                    pi,
                    idx,
                    analytic,
                    numeric
                );
            }
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = SmallRng::seed_from_u64(9);
        let layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let mut x = nfv_tensor::uniform_in(2, 3, -1.0, 1.0, &mut rng);
        let (y, cache) = layer.forward(&x);
        let (dx, _) = layer.backward(&cache, &y);

        let eps = 1e-2f32;
        for idx in 0..x.as_slice().len() {
            let orig = x.as_slice()[idx];
            x.as_mut_slice()[idx] = orig + eps;
            let plus = scalar_loss(&layer.forward(&x).0);
            x.as_mut_slice()[idx] = orig - eps;
            let minus = scalar_loss(&layer.forward(&x).0);
            x.as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = dx.as_slice()[idx];
            assert!(
                (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "input idx {}: analytic {} vs numeric {}",
                idx,
                analytic,
                numeric
            );
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = SmallRng::seed_from_u64(5);
        let layer = Dense::new(6, 4, Activation::Relu, &mut rng);
        let x = nfv_tensor::uniform_in(3, 6, -2.0, 2.0, &mut rng);
        let (y, _) = layer.forward(&x);
        assert_eq!(layer.infer(&x).as_slice(), y.as_slice());
    }
}
