//! First-order optimizers operating on flat lists of parameter matrices.
//!
//! An optimizer is bound to a parameter layout at construction time (one
//! state slot per parameter matrix) and then fed `(params, grads)` pairs
//! in that same stable order on every step. Gradient clipping is applied
//! by the callers before stepping where needed.

use nfv_tensor::Matrix;

/// Extracts the shape layout of a parameter list (shared by the
/// `for_params` convenience constructors).
pub fn shapes_of(params: &[&Matrix]) -> Vec<(usize, usize)> {
    params.iter().map(|p| p.shape()).collect()
}

/// A first-order gradient-descent optimizer.
pub trait Optimizer {
    /// Applies one update. `params[i]` and `grads[i]` must have identical
    /// shapes and the layout must match the one used at construction.
    /// A `None` gradient marks a frozen parameter that must be skipped
    /// (transfer-learning fine-tuning freezes bottom layers this way).
    fn step(&mut self, params: &mut [&mut Matrix], grads: &[Option<&Matrix>]);

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// SGD over parameters shaped like `shapes`, with `momentum == 0.0`
    /// giving vanilla SGD.
    pub fn new(lr: f32, momentum: f32, shapes: &[(usize, usize)]) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "Sgd: momentum must be in [0, 1)");
        Sgd { lr, momentum, velocity: shapes.iter().map(|&(r, c)| Matrix::zeros(r, c)).collect() }
    }

    /// Convenience constructor taking the parameter list directly.
    pub fn for_params(lr: f32, momentum: f32, params: &[&Matrix]) -> Self {
        Sgd::new(lr, momentum, &shapes_of(params))
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Matrix], grads: &[Option<&Matrix>]) {
        assert_eq!(params.len(), self.velocity.len(), "Sgd: layout mismatch");
        assert_eq!(params.len(), grads.len(), "Sgd: grads length mismatch");
        for (i, ((p, g), v)) in
            params.iter_mut().zip(grads.iter()).zip(self.velocity.iter_mut()).enumerate()
        {
            let Some(g) = g else { continue };
            assert_eq!(
                p.shape(),
                g.shape(),
                "Sgd: param {} shape {:?} does not match grad shape {:?}",
                i,
                p.shape(),
                g.shape()
            );
            if self.momentum > 0.0 {
                v.scale(self.momentum);
                v.scaled_add_assign(-self.lr, g);
                p.add_assign(v);
            } else {
                p.scaled_add_assign(-self.lr, g);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
///
/// The step counter is tracked *per parameter*: a frozen parameter
/// (fed a `None` gradient) keeps both its moment estimates and its
/// bias-correction clock untouched, so unfreezing it later behaves like
/// a fresh warm start instead of resuming a stale, over-corrected state.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: Vec<u64>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the standard defaults `beta1 = 0.9`, `beta2 = 0.999`,
    /// `eps = 1e-8`.
    pub fn new(lr: f32, shapes: &[(usize, usize)]) -> Self {
        Adam::with_betas(lr, 0.9, 0.999, shapes)
    }

    /// Adam with explicit moment coefficients.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, shapes: &[(usize, usize)]) -> Self {
        assert!(lr > 0.0, "Adam: learning rate must be positive");
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: vec![0; shapes.len()],
            m: shapes.iter().map(|&(r, c)| Matrix::zeros(r, c)).collect(),
            v: shapes.iter().map(|&(r, c)| Matrix::zeros(r, c)).collect(),
        }
    }

    /// Convenience constructor taking the parameter list directly.
    pub fn for_params(lr: f32, params: &[&Matrix]) -> Self {
        Adam::new(lr, &shapes_of(params))
    }

    /// Number of steps applied so far (to the most-updated parameter).
    pub fn steps(&self) -> u64 {
        self.t.iter().copied().max().unwrap_or(0)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Matrix], grads: &[Option<&Matrix>]) {
        assert_eq!(params.len(), self.m.len(), "Adam: layout mismatch");
        assert_eq!(params.len(), grads.len(), "Adam: grads length mismatch");
        for (i, (p, g)) in params.iter_mut().zip(grads.iter()).enumerate() {
            let Some(g) = g else { continue };
            assert_eq!(
                p.shape(),
                g.shape(),
                "Adam: param {} shape {:?} does not match grad shape {:?}",
                i,
                p.shape(),
                g.shape()
            );
            self.t[i] += 1;
            let bc1 = 1.0 - self.beta1.powi(self.t[i] as i32);
            let bc2 = 1.0 - self.beta2.powi(self.t[i] as i32);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((pk, &gk), (mk, vk)) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice().iter())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
            {
                *mk = self.beta1 * *mk + (1.0 - self.beta1) * gk;
                *vk = self.beta2 * *vk + (1.0 - self.beta2) * gk * gk;
                let m_hat = *mk / bc1;
                let v_hat = *vk / bc2;
                *pk -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "Adam: learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = 0.5*(x - target)^2 with gradient (x - target).
    fn run_quadratic(opt: &mut dyn Optimizer, start: f32, target: f32, iters: usize) -> f32 {
        let mut x = Matrix::filled(1, 1, start);
        for _ in 0..iters {
            let g = Matrix::filled(1, 1, x.get(0, 0) - target);
            opt.step(&mut [&mut x], &[Some(&g)]);
        }
        x.get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, &[(1, 1)]);
        let x = run_quadratic(&mut opt, 10.0, 3.0, 200);
        assert!((x - 3.0).abs() < 1e-3, "got {}", x);
    }

    #[test]
    fn momentum_converges_faster_than_plain_sgd() {
        let mut plain = Sgd::new(0.01, 0.0, &[(1, 1)]);
        let mut mom = Sgd::new(0.01, 0.9, &[(1, 1)]);
        let x_plain = run_quadratic(&mut plain, 10.0, 0.0, 50);
        let x_mom = run_quadratic(&mut mom, 10.0, 0.0, 50);
        assert!(x_mom.abs() < x_plain.abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3, &[(1, 1)]);
        let x = run_quadratic(&mut opt, 10.0, -2.0, 300);
        assert!((x + 2.0).abs() < 1e-2, "got {}", x);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction the very first Adam update is ~lr * sign(g).
        let mut opt = Adam::new(0.5, &[(1, 1)]);
        let mut x = Matrix::filled(1, 1, 0.0);
        let g = Matrix::filled(1, 1, 123.0);
        opt.step(&mut [&mut x], &[Some(&g)]);
        assert!((x.get(0, 0) + 0.5).abs() < 1e-3, "got {}", x.get(0, 0));
    }

    #[test]
    fn frozen_params_are_skipped() {
        let mut opt = Sgd::new(0.5, 0.0, &[(1, 1), (1, 1)]);
        let mut a = Matrix::filled(1, 1, 1.0);
        let mut b = Matrix::filled(1, 1, 1.0);
        let g = Matrix::filled(1, 1, 1.0);
        opt.step(&mut [&mut a, &mut b], &[None, Some(&g)]);
        assert_eq!(a.get(0, 0), 1.0, "frozen parameter must not move");
        assert_eq!(b.get(0, 0), 0.5);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn layout_mismatch_panics() {
        let mut opt = Sgd::new(0.1, 0.0, &[(1, 1)]);
        let mut a = Matrix::zeros(1, 1);
        let mut b = Matrix::zeros(1, 1);
        let g = Matrix::zeros(1, 1);
        opt.step(&mut [&mut a, &mut b], &[Some(&g), Some(&g)]);
    }

    #[test]
    #[should_panic(expected = "param 1 shape")]
    fn shape_mismatch_reports_parameter_index() {
        let mut opt = Adam::new(0.1, &[(1, 1), (2, 2)]);
        let mut a = Matrix::zeros(1, 1);
        let mut b = Matrix::zeros(2, 2);
        let ga = Matrix::zeros(1, 1);
        let gb = Matrix::zeros(2, 3); // wrong shape for param 1
        opt.step(&mut [&mut a, &mut b], &[Some(&ga), Some(&gb)]);
    }

    #[test]
    fn adam_does_not_advance_state_for_frozen_params() {
        // Freeze param 0 for many steps, then unfreeze it: its very first
        // real update must have first-step magnitude (~lr), proving the
        // bias-correction clock and moments did not advance while frozen.
        let mut opt = Adam::new(0.5, &[(1, 1), (1, 1)]);
        let mut a = Matrix::filled(1, 1, 0.0);
        let mut b = Matrix::filled(1, 1, 0.0);
        let g = Matrix::filled(1, 1, 42.0);
        for _ in 0..25 {
            opt.step(&mut [&mut a, &mut b], &[None, Some(&g)]);
        }
        assert_eq!(a.get(0, 0), 0.0, "frozen parameter must stay bit-identical");
        assert_eq!(opt.steps(), 25);
        opt.step(&mut [&mut a, &mut b], &[Some(&g), Some(&g)]);
        assert!(
            (a.get(0, 0) + 0.5).abs() < 1e-3,
            "first unfrozen update should be ~lr, got {}",
            a.get(0, 0)
        );
    }
}
