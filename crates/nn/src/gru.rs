//! A batched GRU layer with full back-propagation through time, plus the
//! GRU variant of the next-template sequence model.
//!
//! Gate layout follows Cho et al. 2014: for input `x_t` (`B x I`) and
//! previous hidden state `h_{t-1}` (`B x H`),
//!
//! ```text
//! zx = x_t Wx + b            (B x 3H, gate order [r z n])
//! zh = h_{t-1} Wh            (B x 3H)
//! r = sigmoid(zx_r + zh_r)   (reset gate)
//! z = sigmoid(zx_z + zh_z)   (update gate)
//! n = tanh(zx_n + r * zh_n)  (candidate state)
//! h_t = (1 - z) * n + z * h_{t-1}
//! ```
//!
//! The reset gate multiplies the *hidden contribution* `zh_n` (the
//! "v3"/CuDNN formulation), which keeps the whole step at two GEMMs and
//! makes `zh_n` the only extra value the backward pass needs cached.
//! Three parameter matrices per layer instead of the LSTM's four gates
//! means ~25% fewer weights at the same hidden width.

use crate::activation::sigmoid;
use crate::checkpoint::{Checkpoint, CheckpointError, MatrixDump};
use crate::dense::{Dense, DenseCache};
use crate::embedding::Embedding;
use crate::loss;
use crate::model::{restore_params, SeqView};
use crate::trainer::{BatchLoss, GradientSet, ShardedBatchLoss};
use crate::Activation;
use crate::Trainable;
use nfv_tensor::{xavier_uniform, Matrix, Workspace};
use rand::Rng;
use std::mem;

/// One GRU layer: parameters `Wx` (`I x 3H`), `Wh` (`H x 3H`), `b` (`1 x 3H`).
#[derive(Debug, Clone)]
pub struct GruLayer {
    wx: Matrix,
    wh: Matrix,
    b: Matrix,
    hidden: usize,
}

/// Per-timestep values cached by the forward pass for BPTT.
#[derive(Debug, Clone, Default)]
struct StepCache {
    /// Layer input at this step (`B x I`).
    x: Matrix,
    /// Hidden state entering this step (`B x H`).
    h_prev: Matrix,
    /// Activated gates `[r z n]` (`B x 3H`).
    gates: Matrix,
    /// Hidden contribution to the candidate, `zh_n` before the reset
    /// gate multiplies it (`B x H`).
    hn: Matrix,
}

/// Cache for a whole sequence, filled by [`GruLayer::forward_seq_into`].
/// Reusable across training steps: buffers are reshaped in place rather
/// than reallocated.
#[derive(Debug, Clone, Default)]
pub struct GruSeqCache {
    steps: Vec<StepCache>,
    /// Scratch for `h_prev * Wh` (`B x 3H`).
    zh: Matrix,
}

impl GruSeqCache {
    /// Shapes every buffer for a `t_len`-step sequence.
    fn ensure(&mut self, t_len: usize, batch: usize, input: usize, hidden: usize) {
        self.steps.truncate(t_len);
        self.steps.resize_with(t_len, StepCache::default);
        for step in &mut self.steps {
            step.x.reset(batch, input);
            step.h_prev.reset(batch, hidden);
            step.gates.reset(batch, 3 * hidden);
            step.hn.reset(batch, hidden);
        }
        self.zh.reset(batch, 3 * hidden);
    }
}

/// Parameter gradients in the same order as [`GruLayer::params`]:
/// `[dwx, dwh, db]`.
#[derive(Debug, Clone)]
pub struct GruGrads {
    /// Gradient w.r.t. `Wx`.
    pub dwx: Matrix,
    /// Gradient w.r.t. `Wh`.
    pub dwh: Matrix,
    /// Gradient w.r.t. the bias row.
    pub db: Matrix,
}

/// Mutable references to one layer's gradient accumulators inside a
/// larger gradient set (same order as [`GruLayer::params`]).
#[derive(Debug)]
pub struct GruGradRefs<'a> {
    /// Accumulator for `dL/dWx`.
    pub dwx: &'a mut Matrix,
    /// Accumulator for `dL/dWh`.
    pub dwh: &'a mut Matrix,
    /// Accumulator for `dL/db`.
    pub db: &'a mut Matrix,
}

/// Recurrent state `h` carried between steps during streaming inference.
#[derive(Debug, Clone)]
pub struct GruState {
    /// Hidden state (`B x H`).
    pub h: Matrix,
}

impl GruState {
    /// Zero state for a batch of `batch` rows and `hidden` units.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        GruState { h: Matrix::zeros(batch, hidden) }
    }
}

impl GruLayer {
    /// New layer with Xavier-initialized weights and zero bias.
    pub fn new(input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        GruLayer {
            wx: xavier_uniform(input, 3 * hidden, rng),
            wh: xavier_uniform(hidden, 3 * hidden, rng),
            b: Matrix::zeros(1, 3 * hidden),
            hidden,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.wx.rows()
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// One forward step without caching; used for streaming inference.
    pub fn step_infer(&self, x: &Matrix, state: &GruState) -> GruState {
        let batch = x.rows();
        let hd = self.hidden;
        assert_eq!(x.cols(), self.input_dim(), "GruLayer: input width mismatch");
        assert_eq!(state.h.shape(), (batch, hd), "GruLayer: h shape mismatch");

        let mut zx = x.matmul(&self.wx);
        zx.add_row_broadcast(self.b.row(0));
        let zh = state.h.matmul(&self.wh);

        let mut h = Matrix::zeros(batch, hd);
        for r in 0..batch {
            let zx_row = zx.row(r);
            let zh_row = zh.row(r);
            for k in 0..hd {
                let rg = sigmoid(zx_row[k] + zh_row[k]);
                let zg = sigmoid(zx_row[hd + k] + zh_row[hd + k]);
                let n = (zx_row[2 * hd + k] + rg * zh_row[2 * hd + k]).tanh();
                h.set(r, k, (1.0 - zg) * n + zg * state.h.get(r, k));
            }
        }
        GruState { h }
    }

    /// Runs a full sequence from a zero initial state.
    ///
    /// `xs[t]` is the `B x I` input at step `t`; returns the hidden state
    /// at every step plus the cache for [`GruLayer::backward_seq`].
    pub fn forward_seq(&self, xs: &[Matrix]) -> (Vec<Matrix>, GruSeqCache) {
        let mut outs = Vec::new();
        let mut cache = GruSeqCache::default();
        let mut ws = Workspace::new();
        self.forward_seq_into(xs, &mut outs, &mut cache, &mut ws);
        (outs, cache)
    }

    /// Allocation-free sequence forward pass: writes `h_t` for every step
    /// into `outs` and fills the reusable `cache` for
    /// [`GruLayer::backward_seq_into`].
    pub fn forward_seq_into(
        &self,
        xs: &[Matrix],
        outs: &mut Vec<Matrix>,
        cache: &mut GruSeqCache,
        ws: &mut Workspace,
    ) {
        assert!(!xs.is_empty(), "forward_seq: empty sequence");
        let batch = xs[0].rows();
        let hd = self.hidden;
        ws.ensure_seq(outs, xs.len(), batch, hd);
        cache.ensure(xs.len(), batch, self.input_dim(), hd);
        let GruSeqCache { steps, zh } = cache;
        for (t, x) in xs.iter().enumerate() {
            assert_eq!(x.cols(), self.input_dim(), "GruLayer: input width mismatch");
            assert_eq!(x.rows(), batch, "GruLayer: ragged batch");
            let (done, rest) = outs.split_at_mut(t);
            let out = &mut rest[0];
            let StepCache { x: sx, h_prev, gates, hn } = &mut steps[t];
            sx.copy_from(x);
            if t == 0 {
                h_prev.fill_zero();
            } else {
                h_prev.copy_from(&done[t - 1]);
            }

            // gates starts as zx = x Wx + b; zh = h_prev Wh stays separate
            // because the reset gate multiplies only its candidate third.
            x.matmul_into(&self.wx, gates);
            gates.add_row_broadcast(self.b.row(0));
            h_prev.matmul_into(&self.wh, zh);

            // Activate in place: [r z n], caching the raw zh_n in hn.
            for r in 0..batch {
                let row = gates.row_mut(r);
                let zh_row = zh.row(r);
                for k in 0..hd {
                    let rg = sigmoid(row[k] + zh_row[k]);
                    let zg = sigmoid(row[hd + k] + zh_row[hd + k]);
                    let hn_v = zh_row[2 * hd + k];
                    let n = (row[2 * hd + k] + rg * hn_v).tanh();
                    row[k] = rg;
                    row[hd + k] = zg;
                    row[2 * hd + k] = n;
                    hn.set(r, k, hn_v);
                    out.set(r, k, (1.0 - zg) * n + zg * h_prev.get(r, k));
                }
            }
        }
    }

    /// Back-propagation through time.
    ///
    /// `d_hs[t]` is `dL/dh_t` coming from the layer above (zero matrices
    /// for steps that do not feed the loss). Returns `dL/dx_t` for every
    /// step and the accumulated parameter gradients.
    pub fn backward_seq(&self, cache: &GruSeqCache, d_hs: &[Matrix]) -> (Vec<Matrix>, GruGrads) {
        let hd = self.hidden;
        let mut dwx = Matrix::zeros(self.wx.rows(), self.wx.cols());
        let mut dwh = Matrix::zeros(self.wh.rows(), self.wh.cols());
        let mut db = Matrix::zeros(1, 3 * hd);
        let mut dxs = Vec::new();
        let mut ws = Workspace::new();
        self.backward_seq_into(
            cache,
            d_hs,
            &mut dxs,
            GruGradRefs { dwx: &mut dwx, dwh: &mut dwh, db: &mut db },
            &mut ws,
        );
        (dxs, GruGrads { dwx, dwh, db })
    }

    /// Allocation-free BPTT: writes `dL/dx_t` into `dxs` and *accumulates*
    /// the parameter gradients into `grads` (callers zero them once per
    /// batch). Scratch buffers are borrowed from `ws`.
    pub fn backward_seq_into(
        &self,
        cache: &GruSeqCache,
        d_hs: &[Matrix],
        dxs: &mut Vec<Matrix>,
        grads: GruGradRefs<'_>,
        ws: &mut Workspace,
    ) {
        assert_eq!(d_hs.len(), cache.steps.len(), "backward_seq: length mismatch");
        assert_eq!(grads.dwx.shape(), self.wx.shape(), "backward_seq: dwx shape mismatch");
        assert_eq!(grads.dwh.shape(), self.wh.shape(), "backward_seq: dwh shape mismatch");
        assert_eq!(grads.db.shape(), self.b.shape(), "backward_seq: db shape mismatch");
        let t_len = cache.steps.len();
        let batch = cache.steps[0].x.rows();
        let hd = self.hidden;
        let input = self.input_dim();

        ws.ensure_seq(dxs, t_len, batch, input);
        let mut dh = ws.take(batch, hd);
        let mut dzx = ws.take(batch, 3 * hd);
        let mut dzh = ws.take(batch, 3 * hd);
        let mut dh_next = ws.take_zeroed(batch, hd);
        let mut tmp_wx = ws.take(input, 3 * hd);
        let mut tmp_wh = ws.take(hd, 3 * hd);
        let mut tmp_db = ws.take(1, 3 * hd);
        // Transpose the weights once so the per-step input/hidden
        // gradients become plain matmuls over contiguous rows.
        let mut wx_t = ws.take(3 * hd, input);
        let mut wh_t = ws.take(3 * hd, hd);
        self.wx.transpose_into(&mut wx_t);
        self.wh.transpose_into(&mut wh_t);

        for t in (0..t_len).rev() {
            let step = &cache.steps[t];
            // Total gradient reaching h_t.
            dh.copy_from(&d_hs[t]);
            dh.add_assign(&dh_next);

            // Per-element gate gradients -> pre-activation gradients.
            // Every element of dzx and dzh is overwritten each step.
            for r in 0..batch {
                let gates = step.gates.row(r);
                for k in 0..hd {
                    let rg = gates[k];
                    let zg = gates[hd + k];
                    let n = gates[2 * hd + k];
                    let hn = step.hn.get(r, k);
                    let dh_v = dh.get(r, k);

                    // h = (1-z) n + z h_prev
                    let da_z = dh_v * (step.h_prev.get(r, k) - n) * zg * (1.0 - zg);
                    let dpre_n = dh_v * (1.0 - zg) * (1.0 - n * n);
                    let da_r = dpre_n * hn * rg * (1.0 - rg);

                    let zx_row = dzx.row_mut(r);
                    zx_row[k] = da_r;
                    zx_row[hd + k] = da_z;
                    zx_row[2 * hd + k] = dpre_n;
                    let zh_row = dzh.row_mut(r);
                    zh_row[k] = da_r;
                    zh_row[hd + k] = da_z;
                    zh_row[2 * hd + k] = dpre_n * rg;
                }
            }

            step.x.matmul_tn_into(&dzx, &mut tmp_wx);
            grads.dwx.add_assign(&tmp_wx);
            step.h_prev.matmul_tn_into(&dzh, &mut tmp_wh);
            grads.dwh.add_assign(&tmp_wh);
            dzx.sum_rows_into(&mut tmp_db);
            grads.db.add_assign(&tmp_db);

            dzx.matmul_into(&wx_t, &mut dxs[t]);
            // dh_prev = dzh Wh^T + the direct carry z * dh.
            dzh.matmul_into(&wh_t, &mut dh_next);
            for r in 0..batch {
                let gates = step.gates.row(r);
                for k in 0..hd {
                    let v = dh_next.get(r, k) + dh.get(r, k) * gates[hd + k];
                    dh_next.set(r, k, v);
                }
            }
        }

        for buf in [dh, dzx, dzh, dh_next, tmp_wx, tmp_wh, tmp_db, wx_t, wh_t] {
            ws.recycle(buf);
        }
    }
}

impl Trainable for GruLayer {
    fn params(&self) -> Vec<&Matrix> {
        vec![&self.wx, &self.wh, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }
}

/// Hyper-parameters of [`GruSequenceModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GruModelConfig {
    /// Template vocabulary size (output classes).
    pub vocab: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Hidden units per GRU layer.
    pub hidden: usize,
    /// Number of stacked GRU layers.
    pub gru_layers: usize,
    /// Whether to append the normalized inter-arrival gap to each step's
    /// input.
    pub use_gap_feature: bool,
}

impl Default for GruModelConfig {
    fn default() -> Self {
        GruModelConfig {
            vocab: 64,
            embed_dim: 16,
            hidden: 32,
            gru_layers: 2,
            use_gap_feature: true,
        }
    }
}

/// The GRU member of the detector zoo: `Embedding (+ gap feature) ->
/// GRU x N -> Dense`, predicting a probability distribution over the
/// next syslog template. Same container contract as
/// [`crate::model::SequenceModel`] — [`SeqView`] batches, frozen-bottom
/// transfer learning, sharded gradients, JSON checkpoints — with the
/// GRU cell swapped in.
#[derive(Debug, Clone)]
pub struct GruSequenceModel {
    cfg: GruModelConfig,
    embedding: Embedding,
    grus: Vec<GruLayer>,
    head: Dense,
    frozen_bottom: usize,
    scratch: GruScratch,
}

/// Reusable forward/backward buffers for [`GruSequenceModel`]. Shaped on
/// first use and reshaped in place afterwards, so steady-state training
/// steps allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct GruScratch {
    ws: Workspace,
    ids_t: Vec<usize>,
    targets: Vec<usize>,
    /// Per-step inputs (`B x (embed_dim + gap)`).
    xs: Vec<Matrix>,
    /// Ping-pong hidden-sequence buffers for the GRU stack.
    seq_a: Vec<Matrix>,
    seq_b: Vec<Matrix>,
    /// Ping-pong gradient-sequence buffers for BPTT.
    d_a: Vec<Matrix>,
    d_b: Vec<Matrix>,
    gru_caches: Vec<GruSeqCache>,
    head_cache: DenseCache,
    /// Holds probabilities after inference, `dL/dlogits` during training.
    probs: Matrix,
    demb_rows: Matrix,
    dtable_tmp: Matrix,
}

impl GruSequenceModel {
    /// Builds a model with freshly initialized parameters.
    pub fn new(cfg: GruModelConfig, rng: &mut impl Rng) -> Self {
        assert!(cfg.vocab > 1, "GruSequenceModel: vocabulary must have at least 2 classes");
        assert!(cfg.gru_layers >= 1, "GruSequenceModel: need at least one GRU layer");
        let embedding = Embedding::new(cfg.vocab, cfg.embed_dim, rng);
        let in0 = cfg.embed_dim + usize::from(cfg.use_gap_feature);
        let mut grus = Vec::with_capacity(cfg.gru_layers);
        for l in 0..cfg.gru_layers {
            let input = if l == 0 { in0 } else { cfg.hidden };
            grus.push(GruLayer::new(input, cfg.hidden, rng));
        }
        let head = Dense::new(cfg.hidden, cfg.vocab, Activation::Identity, rng);
        Self::assemble(cfg, embedding, grus, head)
    }

    fn assemble(
        cfg: GruModelConfig,
        embedding: Embedding,
        grus: Vec<GruLayer>,
        head: Dense,
    ) -> Self {
        GruSequenceModel {
            cfg,
            embedding,
            grus,
            head,
            frozen_bottom: 0,
            scratch: GruScratch::default(),
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &GruModelConfig {
        &self.cfg
    }

    /// Number of components (embedding + GRU layers + head).
    pub fn component_count(&self) -> usize {
        2 + self.grus.len()
    }

    /// Freezes the bottom `n` components (0 = train everything). Frozen
    /// components receive no optimizer updates.
    pub fn set_frozen_bottom(&mut self, n: usize) {
        assert!(
            n < self.component_count(),
            "cannot freeze all {} components",
            self.component_count()
        );
        self.frozen_bottom = n;
    }

    /// Currently frozen bottom-component count.
    pub fn frozen_bottom(&self) -> usize {
        self.frozen_bottom
    }

    /// Validates the samples selected by `indices` and returns the shared
    /// window length.
    fn check_view(&self, view: &SeqView<'_>, indices: &[usize]) -> usize {
        assert!(!indices.is_empty(), "GruSequenceModel: empty batch");
        let t_len = view.ids[indices[0]].len();
        assert!(t_len > 0, "GruSequenceModel: zero-length windows");
        for &i in indices {
            assert_eq!(view.ids[i].len(), t_len, "GruSequenceModel: ragged windows");
        }
        if self.cfg.use_gap_feature {
            assert_eq!(view.gaps.len(), view.ids.len(), "GruSequenceModel: gaps required");
            for &i in indices {
                assert_eq!(view.gaps[i].len(), t_len, "GruSequenceModel: ragged gap rows");
            }
        }
        t_len
    }

    /// Allocation-free forward pass over the selected samples; the logits
    /// end up in `s.head_cache.output()`.
    fn forward_scratch(&self, view: &SeqView<'_>, indices: &[usize], s: &mut GruScratch) {
        let t_len = self.check_view(view, indices);
        let b = indices.len();
        let in0 = self.cfg.embed_dim + usize::from(self.cfg.use_gap_feature);
        let GruScratch { ws, ids_t, xs, seq_a, seq_b, gru_caches, head_cache, .. } = s;

        // Per-step inputs: embed the t-th id of every sample, then fill
        // the gap column when configured.
        ws.ensure_seq(xs, t_len, b, in0);
        for (t, x) in xs.iter_mut().enumerate() {
            ids_t.clear();
            ids_t.extend(indices.iter().map(|&i| view.ids[i][t]));
            self.embedding.forward_into(ids_t, x);
            if self.cfg.use_gap_feature {
                for (r, &i) in indices.iter().enumerate() {
                    x.set(r, in0 - 1, view.gaps[i][t]);
                }
            }
        }

        let n = self.grus.len();
        if gru_caches.len() != n {
            gru_caches.truncate(n);
            gru_caches.resize_with(n, GruSeqCache::default);
        }
        // Ping-pong the hidden sequences through the stack: xs -> a -> b
        // -> a -> ...
        for (l, gru) in self.grus.iter().enumerate() {
            if l == 0 {
                gru.forward_seq_into(xs, seq_a, &mut gru_caches[0], ws);
            } else if l % 2 == 1 {
                gru.forward_seq_into(seq_a, seq_b, &mut gru_caches[l], ws);
            } else {
                gru.forward_seq_into(seq_b, seq_a, &mut gru_caches[l], ws);
            }
        }
        let top = if n % 2 == 1 { seq_a } else { seq_b };
        let last_h = top.last().expect("non-empty sequence");
        self.head.forward_into(last_h, head_cache);
    }

    /// Allocation-free backward pass. Expects `s.probs` to hold
    /// `dL/dlogits` and accumulates parameter gradients into `grads`.
    fn backward_scratch(
        &self,
        view: &SeqView<'_>,
        indices: &[usize],
        s: &mut GruScratch,
        grads: &mut GradientSet,
    ) {
        let t_len = view.ids[indices[0]].len();
        let b = indices.len();
        let n = self.grus.len();
        let slots = grads.slots_mut();
        let GruScratch {
            ws,
            ids_t,
            d_a,
            d_b,
            gru_caches,
            head_cache,
            probs,
            demb_rows,
            dtable_tmp,
            ..
        } = s;

        // Head backward; only the last step feeds the loss, so every
        // other step's incoming gradient is zero.
        ws.ensure_seq(d_a, t_len, b, self.cfg.hidden);
        for m in d_a.iter_mut().take(t_len - 1) {
            m.fill_zero();
        }
        let head_base = 1 + 3 * n;
        {
            let [dw, db] = &mut slots[head_base..head_base + 2] else { unreachable!() };
            self.head.backward_into(head_cache, probs, &mut d_a[t_len - 1], dw, db, ws);
        }

        // BPTT down the GRU stack, ping-ponging the per-step gradients.
        for l in (0..n).rev() {
            let base = 1 + 3 * l;
            let [dwx, dwh, db] = &mut slots[base..base + 3] else { unreachable!() };
            let refs = GruGradRefs { dwx, dwh, db };
            if (n - 1 - l).is_multiple_of(2) {
                self.grus[l].backward_seq_into(&gru_caches[l], d_a, d_b, refs, ws);
            } else {
                self.grus[l].backward_seq_into(&gru_caches[l], d_b, d_a, refs, ws);
            }
        }
        let d_bottom: &[Matrix] = if n % 2 == 1 { d_b } else { d_a };

        // Embedding backward: strip the gap column when present.
        let ed = self.cfg.embed_dim;
        for (t, dx) in d_bottom.iter().enumerate() {
            ids_t.clear();
            ids_t.extend(indices.iter().map(|&i| view.ids[i][t]));
            demb_rows.reset(b, ed);
            for r in 0..b {
                demb_rows.row_mut(r).copy_from_slice(&dx.row(r)[..ed]);
            }
            dtable_tmp.reset(self.cfg.vocab, ed);
            dtable_tmp.fill_zero();
            dtable_tmp.scatter_add_rows(ids_t, demb_rows);
            slots[0].add_assign(dtable_tmp);
        }
    }

    /// Forward + loss + backward for one shard, using caller-provided
    /// scratch. Gradients are normalized by `total` and the returned
    /// loss is the shard's unnormalized sum, so per-shard results add up
    /// to the batched mean exactly as the serial path computes it.
    fn seq_grads_impl(
        &self,
        view: &SeqView<'_>,
        indices: &[usize],
        s: &mut GruScratch,
        grads: &mut GradientSet,
        total: usize,
    ) -> f32 {
        self.forward_scratch(view, indices, s);
        s.targets.clear();
        for &i in indices {
            s.targets.push(view.targets[i]);
        }
        let loss_sum = loss::softmax_cross_entropy_scaled_into(
            s.head_cache.output(),
            &s.targets,
            &mut s.probs,
            total,
        );
        self.backward_scratch(view, indices, s, grads);
        loss_sum
    }

    /// Probability distribution over the next template for each selected
    /// window (`indices.len() x vocab`), written into `scratch` and
    /// returned by reference — zero allocation in steady state.
    pub fn predict_probs_view<'s>(
        &self,
        view: &SeqView<'_>,
        indices: &[usize],
        scratch: &'s mut GruScratch,
    ) -> &'s Matrix {
        self.forward_scratch(view, indices, scratch);
        scratch.probs.copy_from(scratch.head_cache.output());
        scratch.probs.softmax_rows_inplace();
        &scratch.probs
    }

    /// How many leading parameters belong to the frozen bottom components.
    fn frozen_param_count(&self) -> usize {
        // Component i owns: embedding -> 1 param, each GRU -> 3, head -> 2.
        let mut count = 0;
        for comp in 0..self.frozen_bottom {
            count += if comp == 0 { 1 } else { 3 };
        }
        count
    }

    /// Shapes of all parameters in optimizer order.
    pub fn param_shapes(&self) -> Vec<(usize, usize)> {
        self.params().iter().map(|p| p.shape()).collect()
    }

    /// Serializes the model (architecture + weights).
    pub fn to_checkpoint(&self) -> Checkpoint {
        Checkpoint {
            tag: "gru-sequence-model".to_string(),
            dims: vec![
                self.cfg.vocab,
                self.cfg.embed_dim,
                self.cfg.hidden,
                self.cfg.gru_layers,
                usize::from(self.cfg.use_gap_feature),
            ],
            params: self.params().iter().map(|p| MatrixDump::from_matrix(p)).collect(),
        }
    }

    /// Restores a model from a checkpoint produced by
    /// [`GruSequenceModel::to_checkpoint`], reporting structural problems
    /// as typed errors instead of panicking.
    pub fn try_from_checkpoint(ckpt: &Checkpoint) -> Result<Self, CheckpointError> {
        if ckpt.tag != "gru-sequence-model" {
            return Err(CheckpointError::Invalid(format!(
                "expected tag \"gru-sequence-model\", found {:?}",
                ckpt.tag
            )));
        }
        if ckpt.dims.len() != 5 {
            return Err(CheckpointError::Invalid(format!(
                "gru-sequence-model checkpoint needs 5 dims, found {}",
                ckpt.dims.len()
            )));
        }
        if ckpt.dims[..4].contains(&0) {
            return Err(CheckpointError::Invalid(format!(
                "gru-sequence-model dims must be non-zero, found {:?}",
                ckpt.dims
            )));
        }
        let cfg = GruModelConfig {
            vocab: ckpt.dims[0],
            embed_dim: ckpt.dims[1],
            hidden: ckpt.dims[2],
            gru_layers: ckpt.dims[3],
            use_gap_feature: ckpt.dims[4] != 0,
        };
        let mut rng = rand::rngs::mock::StepRng::new(1, 1);
        let mut model = GruSequenceModel::new(cfg, &mut rng);
        restore_params(&mut model, ckpt)?;
        Ok(model)
    }

    /// Panicking convenience wrapper around
    /// [`GruSequenceModel::try_from_checkpoint`] for checkpoints known to
    /// be valid (e.g. built in-process).
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Self {
        GruSequenceModel::try_from_checkpoint(ckpt).expect("valid gru-sequence-model checkpoint")
    }
}

impl Trainable for GruSequenceModel {
    fn params(&self) -> Vec<&Matrix> {
        let mut out = self.embedding.params();
        for l in &self.grus {
            out.extend(l.params());
        }
        out.extend(self.head.params());
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out = self.embedding.params_mut();
        for l in &mut self.grus {
            out.extend(l.params_mut());
        }
        out.extend(self.head.params_mut());
        out
    }
}

impl<'a> BatchLoss<SeqView<'a>> for GruSequenceModel {
    fn batch_gradients(
        &mut self,
        data: &SeqView<'a>,
        indices: &[usize],
        grads: &mut GradientSet,
    ) -> f32 {
        // Move the scratch out so the forward/backward helpers can borrow
        // `self` immutably alongside it.
        let mut s = mem::take(&mut self.scratch);
        let loss_sum = self.seq_grads_impl(data, indices, &mut s, grads, indices.len());
        self.scratch = s;
        loss_sum / indices.len() as f32
    }

    fn frozen_params(&self) -> usize {
        self.frozen_param_count()
    }
}

impl<'a> ShardedBatchLoss<SeqView<'a>> for GruSequenceModel {
    type Worker = GruScratch;

    fn shard_gradients(
        &self,
        data: &SeqView<'a>,
        indices: &[usize],
        total: usize,
        worker: &mut GruScratch,
        grads: &mut GradientSet,
    ) -> f32 {
        self.seq_grads_impl(data, indices, worker, grads, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use crate::trainer::{clip_and_apply, DEFAULT_GRAD_CLIP};
    use rand::{rngs::SmallRng, SeedableRng};

    /// Loss = 0.5 * sum over all steps of ||h_t||^2, so dL/dh_t = h_t.
    fn seq_loss(layer: &GruLayer, xs: &[Matrix]) -> f32 {
        let (hs, _) = layer.forward_seq(xs);
        hs.iter().map(|h| 0.5 * h.as_slice().iter().map(|v| v * v).sum::<f32>()).sum()
    }

    #[test]
    fn forward_shapes_and_state_propagation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let layer = GruLayer::new(3, 4, &mut rng);
        let xs: Vec<Matrix> =
            (0..5).map(|_| nfv_tensor::uniform_in(2, 3, -1.0, 1.0, &mut rng)).collect();
        let (hs, _) = layer.forward_seq(&xs);
        assert_eq!(hs.len(), 5);
        for h in &hs {
            assert_eq!(h.shape(), (2, 4));
            assert!(!h.has_non_finite());
        }
        // Streaming inference must match the batched sequence forward.
        let mut state = GruState::zeros(2, 4);
        for (t, x) in xs.iter().enumerate() {
            state = layer.step_infer(x, &state);
            for (a, b) in state.h.as_slice().iter().zip(hs[t].as_slice().iter()) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn hidden_stays_bounded() {
        // h is a convex combination of tanh outputs: |h| <= 1 always.
        let mut rng = SmallRng::seed_from_u64(2);
        let layer = GruLayer::new(2, 3, &mut rng);
        let xs: Vec<Matrix> =
            (0..20).map(|_| nfv_tensor::uniform_in(1, 2, -50.0, 50.0, &mut rng)).collect();
        let (hs, _) = layer.forward_seq(&xs);
        for h in &hs {
            assert!(h.max_abs() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn gradient_check_all_parameters() {
        let mut rng = SmallRng::seed_from_u64(21);
        let mut layer = GruLayer::new(3, 2, &mut rng);
        let xs: Vec<Matrix> =
            (0..4).map(|_| nfv_tensor::uniform_in(2, 3, -1.0, 1.0, &mut rng)).collect();

        let (hs, cache) = layer.forward_seq(&xs);
        let d_hs: Vec<Matrix> = hs.clone();
        let (_, grads) = layer.backward_seq(&cache, &d_hs);
        let analytic = [&grads.dwx, &grads.dwh, &grads.db];

        let eps = 1e-2f32;
        for (pi, analytic_grad) in analytic.iter().enumerate() {
            let len = layer.params()[pi].as_slice().len();
            // Probe a deterministic sample of entries in each parameter.
            for idx in (0..len).step_by(1 + len / 7) {
                let orig = layer.params()[pi].as_slice()[idx];
                layer.params_mut()[pi].as_mut_slice()[idx] = orig + eps;
                let plus = seq_loss(&layer, &xs);
                layer.params_mut()[pi].as_mut_slice()[idx] = orig - eps;
                let minus = seq_loss(&layer, &xs);
                layer.params_mut()[pi].as_mut_slice()[idx] = orig;
                let numeric = (plus - minus) / (2.0 * eps);
                let a = analytic_grad.as_slice()[idx];
                assert!(
                    (a - numeric).abs() < 3e-2 * (1.0 + numeric.abs()),
                    "param {} idx {}: analytic {} vs numeric {}",
                    pi,
                    idx,
                    numeric,
                    a
                );
            }
        }
    }

    #[test]
    fn gradient_check_inputs() {
        let mut rng = SmallRng::seed_from_u64(33);
        let layer = GruLayer::new(2, 3, &mut rng);
        let mut xs: Vec<Matrix> =
            (0..3).map(|_| nfv_tensor::uniform_in(1, 2, -1.0, 1.0, &mut rng)).collect();

        let (hs, cache) = layer.forward_seq(&xs);
        let (dxs, _) = layer.backward_seq(&cache, &hs);

        let eps = 1e-2f32;
        for t in 0..xs.len() {
            for idx in 0..xs[t].as_slice().len() {
                let orig = xs[t].as_slice()[idx];
                xs[t].as_mut_slice()[idx] = orig + eps;
                let plus = seq_loss(&layer, &xs);
                xs[t].as_mut_slice()[idx] = orig - eps;
                let minus = seq_loss(&layer, &xs);
                xs[t].as_mut_slice()[idx] = orig;
                let numeric = (plus - minus) / (2.0 * eps);
                let analytic = dxs[t].as_slice()[idx];
                assert!(
                    (analytic - numeric).abs() < 3e-2 * (1.0 + numeric.abs()),
                    "step {} idx {}: analytic {} vs numeric {}",
                    t,
                    idx,
                    analytic,
                    numeric
                );
            }
        }
    }

    #[test]
    fn gru_has_fewer_parameters_than_lstm_at_same_width() {
        let mut rng = SmallRng::seed_from_u64(5);
        let gru = GruLayer::new(8, 16, &mut rng);
        let lstm = crate::lstm::LstmLayer::new(8, 16, &mut rng);
        let count = |ps: Vec<&Matrix>| ps.iter().map(|p| p.as_slice().len()).sum::<usize>();
        assert_eq!(count(gru.params()) * 4, count(lstm.params()) * 3);
    }

    fn toy_view(window: usize, pattern: &[usize]) -> (Vec<Vec<usize>>, Vec<Vec<f32>>, Vec<usize>) {
        // Sliding windows over a repeating pattern; the next id is always
        // deterministic, so the model should learn it nearly perfectly.
        let seq: Vec<usize> = pattern.iter().cycle().take(200).copied().collect();
        let mut ids = Vec::new();
        let mut gaps = Vec::new();
        let mut targets = Vec::new();
        for start in 0..seq.len() - window {
            ids.push(seq[start..start + window].to_vec());
            gaps.push(vec![0.5; window]);
            targets.push(seq[start + window]);
        }
        (ids, gaps, targets)
    }

    #[test]
    fn learns_a_deterministic_cycle() {
        let cfg = GruModelConfig {
            vocab: 4,
            embed_dim: 6,
            hidden: 12,
            gru_layers: 2,
            use_gap_feature: true,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut model = GruSequenceModel::new(cfg, &mut rng);
        let (ids, gaps, targets) = toy_view(5, &[0, 1, 2, 3]);
        let view = SeqView { ids: &ids, gaps: &gaps, targets: &targets };
        let indices: Vec<usize> = (0..ids.len()).collect();
        let mut opt = Adam::new(0.01, &model.param_shapes());

        let mut first_loss = f32::NAN;
        let mut final_loss = f32::NAN;
        for step in 0..60 {
            let mut grads = GradientSet::new(&model.param_shapes());
            let loss_value = model.batch_gradients(&view, &indices, &mut grads);
            if step == 0 {
                first_loss = loss_value;
            }
            final_loss = loss_value;
            let frozen = model.frozen_param_count();
            clip_and_apply(&mut model, &mut grads, frozen, DEFAULT_GRAD_CLIP, &mut opt);
        }
        assert!(
            final_loss < first_loss * 0.2,
            "loss did not drop: {} -> {}",
            first_loss,
            final_loss
        );

        // The argmax prediction should now follow the cycle.
        let mut scratch = GruScratch::default();
        let probs = model.predict_probs_view(&view, &indices, &mut scratch);
        let preds = probs.argmax_rows();
        let correct = preds.iter().zip(targets.iter()).filter(|(p, t)| p == t).count();
        assert!(
            correct as f32 / targets.len() as f32 > 0.95,
            "accuracy {}/{}",
            correct,
            targets.len()
        );
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let mut rng = SmallRng::seed_from_u64(19);
        let model = GruSequenceModel::new(GruModelConfig::default(), &mut rng);
        let ids = vec![vec![7usize, 8, 9, 10]];
        let gaps = vec![vec![0.1f32, 0.4, 0.2, 0.9]];
        let view = SeqView { ids: &ids, gaps: &gaps, targets: &[] };
        let mut scratch = GruScratch::default();
        let original = model.predict_probs_view(&view, &[0], &mut scratch).clone();
        let restored = GruSequenceModel::from_checkpoint(&model.to_checkpoint());
        let mut scratch2 = GruScratch::default();
        let roundtrip = restored.predict_probs_view(&view, &[0], &mut scratch2);
        assert_eq!(original.as_slice(), roundtrip.as_slice());
    }

    #[test]
    fn frozen_bottom_components_do_not_move() {
        let cfg = GruModelConfig {
            vocab: 5,
            embed_dim: 4,
            hidden: 6,
            gru_layers: 2,
            use_gap_feature: false,
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let mut model = GruSequenceModel::new(cfg, &mut rng);
        model.set_frozen_bottom(2); // freeze embedding + first GRU

        let before: Vec<Vec<f32>> = model.params().iter().map(|p| p.as_slice().to_vec()).collect();
        let ids = vec![vec![0usize, 1, 2, 3]];
        let view = SeqView { ids: &ids, gaps: &[], targets: &[4] };
        let mut opt = Adam::new(0.05, &model.param_shapes());
        for _ in 0..3 {
            let mut grads = GradientSet::new(&model.param_shapes());
            model.batch_gradients(&view, &[0], &mut grads);
            let frozen = model.frozen_param_count();
            clip_and_apply(&mut model, &mut grads, frozen, DEFAULT_GRAD_CLIP, &mut opt);
        }
        let after: Vec<Vec<f32>> = model.params().iter().map(|p| p.as_slice().to_vec()).collect();

        // Embedding (1 param) + GRU0 (3 params) frozen; the rest must move.
        for i in 0..4 {
            assert_eq!(before[i], after[i], "frozen param {} moved", i);
        }
        assert_ne!(before[4], after[4], "unfrozen GRU1 did not move");
        assert_ne!(before[7], after[7], "unfrozen head did not move");
    }
}
