//! A batched LSTM layer with full back-propagation through time.
//!
//! Gate layout follows the classic formulation (Hochreiter & Schmidhuber
//! 1997): for input `x_t` (`B x I`) and previous hidden state `h_{t-1}`
//! (`B x H`),
//!
//! ```text
//! z = x_t Wx + h_{t-1} Wh + b              (B x 4H, gate order [i f g o])
//! i = sigmoid(z_i)   f = sigmoid(z_f)
//! g = tanh(z_g)      o = sigmoid(z_o)
//! c_t = f * c_{t-1} + i * g
//! h_t = o * tanh(c_t)
//! ```
//!
//! The forget-gate bias is initialized to 1.0, the standard trick that
//! lets gradients flow early in training.

use crate::activation::sigmoid;
use crate::Trainable;
use nfv_tensor::{xavier_uniform, Matrix, Workspace};
use rand::Rng;
use std::mem;

/// One LSTM layer: parameters `Wx` (`I x 4H`), `Wh` (`H x 4H`), `b` (`1 x 4H`).
#[derive(Debug, Clone)]
pub struct LstmLayer {
    wx: Matrix,
    wh: Matrix,
    b: Matrix,
    hidden: usize,
}

/// Per-timestep values cached by the forward pass for BPTT.
#[derive(Debug, Clone, Default)]
struct StepCache {
    /// Layer input at this step (`B x I`).
    x: Matrix,
    /// Hidden state entering this step (`B x H`).
    h_prev: Matrix,
    /// Cell state entering this step (`B x H`).
    c_prev: Matrix,
    /// Activated gates `[i f g o]` (`B x 4H`).
    gates: Matrix,
    /// `tanh(c_t)` (`B x H`).
    tanh_c: Matrix,
}

/// Cache for a whole sequence, filled by [`LstmLayer::forward_seq_into`].
/// Reusable across training steps: buffers are reshaped in place rather
/// than reallocated.
#[derive(Debug, Clone, Default)]
pub struct LstmSeqCache {
    steps: Vec<StepCache>,
    /// Scratch for `h_prev * Wh` (`B x 4H`).
    zh: Matrix,
    /// Running cell state (`B x H`).
    c: Matrix,
}

impl LstmSeqCache {
    /// Shapes every buffer for a `t_len`-step sequence.
    fn ensure(&mut self, t_len: usize, batch: usize, input: usize, hidden: usize) {
        self.steps.truncate(t_len);
        self.steps.resize_with(t_len, StepCache::default);
        for step in &mut self.steps {
            step.x.reset(batch, input);
            step.h_prev.reset(batch, hidden);
            step.c_prev.reset(batch, hidden);
            step.gates.reset(batch, 4 * hidden);
            step.tanh_c.reset(batch, hidden);
        }
        self.zh.reset(batch, 4 * hidden);
        self.c.reset(batch, hidden);
    }
}

/// Parameter gradients in the same order as [`LstmLayer::params`]:
/// `[dwx, dwh, db]`.
#[derive(Debug, Clone)]
pub struct LstmGrads {
    /// Gradient w.r.t. `Wx`.
    pub dwx: Matrix,
    /// Gradient w.r.t. `Wh`.
    pub dwh: Matrix,
    /// Gradient w.r.t. the bias row.
    pub db: Matrix,
}

/// Mutable references to one layer's gradient accumulators inside a
/// larger gradient set (same order as [`LstmLayer::params`]).
#[derive(Debug)]
pub struct LstmGradRefs<'a> {
    /// Accumulator for `dL/dWx`.
    pub dwx: &'a mut Matrix,
    /// Accumulator for `dL/dWh`.
    pub dwh: &'a mut Matrix,
    /// Accumulator for `dL/db`.
    pub db: &'a mut Matrix,
}

/// Recurrent state `(h, c)` carried between steps during streaming
/// inference.
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Hidden state (`B x H`).
    pub h: Matrix,
    /// Cell state (`B x H`).
    pub c: Matrix,
}

impl LstmState {
    /// Zero state for a batch of `batch` rows and `hidden` units.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        LstmState { h: Matrix::zeros(batch, hidden), c: Matrix::zeros(batch, hidden) }
    }
}

impl LstmLayer {
    /// New layer with Xavier-initialized weights, zero bias, and the
    /// forget-gate bias set to 1.0.
    pub fn new(input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            b.set(0, c, 1.0);
        }
        LstmLayer {
            wx: xavier_uniform(input, 4 * hidden, rng),
            wh: xavier_uniform(hidden, 4 * hidden, rng),
            b,
            hidden,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.wx.rows()
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// One forward step without caching; used for streaming inference.
    pub fn step_infer(&self, x: &Matrix, state: &LstmState) -> LstmState {
        let (h, c, _, _) = self.step(x, &state.h, &state.c);
        LstmState { h, c }
    }

    /// Computes one step, returning `(h, c, gates, tanh_c)`.
    fn step(
        &self,
        x: &Matrix,
        h_prev: &Matrix,
        c_prev: &Matrix,
    ) -> (Matrix, Matrix, Matrix, Matrix) {
        let batch = x.rows();
        let hd = self.hidden;
        assert_eq!(x.cols(), self.input_dim(), "LstmLayer: input width mismatch");
        assert_eq!(h_prev.shape(), (batch, hd), "LstmLayer: h shape mismatch");
        assert_eq!(c_prev.shape(), (batch, hd), "LstmLayer: c shape mismatch");

        let mut z = x.matmul(&self.wx);
        let zh = h_prev.matmul(&self.wh);
        z.add_assign(&zh);
        z.add_row_broadcast(self.b.row(0));

        // Activate the gates in place: [i f g o].
        let mut gates = z;
        for r in 0..batch {
            let row = gates.row_mut(r);
            for k in 0..hd {
                row[k] = sigmoid(row[k]); // i
                row[hd + k] = sigmoid(row[hd + k]); // f
                row[2 * hd + k] = row[2 * hd + k].tanh(); // g
                row[3 * hd + k] = sigmoid(row[3 * hd + k]); // o
            }
        }

        let mut c = Matrix::zeros(batch, hd);
        let mut tanh_c = Matrix::zeros(batch, hd);
        let mut h = Matrix::zeros(batch, hd);
        for r in 0..batch {
            let g_row = gates.row(r);
            for k in 0..hd {
                let ct = g_row[hd + k] * c_prev.get(r, k) + g_row[k] * g_row[2 * hd + k];
                let tc = ct.tanh();
                c.set(r, k, ct);
                tanh_c.set(r, k, tc);
                h.set(r, k, g_row[3 * hd + k] * tc);
            }
        }
        (h, c, gates, tanh_c)
    }

    /// Runs a full sequence from a zero initial state.
    ///
    /// `xs[t]` is the `B x I` input at step `t`; returns the hidden state
    /// at every step plus the cache for [`LstmLayer::backward_seq`].
    pub fn forward_seq(&self, xs: &[Matrix]) -> (Vec<Matrix>, LstmSeqCache) {
        let mut outs = Vec::new();
        let mut cache = LstmSeqCache::default();
        let mut ws = Workspace::new();
        self.forward_seq_into(xs, &mut outs, &mut cache, &mut ws);
        (outs, cache)
    }

    /// Allocation-free sequence forward pass: writes `h_t` for every step
    /// into `outs` and fills the reusable `cache` for
    /// [`LstmLayer::backward_seq_into`].
    pub fn forward_seq_into(
        &self,
        xs: &[Matrix],
        outs: &mut Vec<Matrix>,
        cache: &mut LstmSeqCache,
        ws: &mut Workspace,
    ) {
        assert!(!xs.is_empty(), "forward_seq: empty sequence");
        let batch = xs[0].rows();
        let hd = self.hidden;
        ws.ensure_seq(outs, xs.len(), batch, hd);
        cache.ensure(xs.len(), batch, self.input_dim(), hd);
        let LstmSeqCache { steps, zh, c } = cache;
        for (t, x) in xs.iter().enumerate() {
            assert_eq!(x.cols(), self.input_dim(), "LstmLayer: input width mismatch");
            assert_eq!(x.rows(), batch, "LstmLayer: ragged batch");
            let (done, rest) = outs.split_at_mut(t);
            let out = &mut rest[0];
            let StepCache { x: sx, h_prev, c_prev, gates, tanh_c } = &mut steps[t];
            sx.copy_from(x);
            if t == 0 {
                h_prev.fill_zero();
                c_prev.fill_zero();
            } else {
                h_prev.copy_from(&done[t - 1]);
                c_prev.copy_from(c);
            }

            x.matmul_into(&self.wx, gates);
            h_prev.matmul_into(&self.wh, zh);
            gates.add_assign(zh);
            gates.add_row_broadcast(self.b.row(0));

            // Activate the gates in place: [i f g o].
            for r in 0..batch {
                let row = gates.row_mut(r);
                for k in 0..hd {
                    row[k] = sigmoid(row[k]); // i
                    row[hd + k] = sigmoid(row[hd + k]); // f
                    row[2 * hd + k] = row[2 * hd + k].tanh(); // g
                    row[3 * hd + k] = sigmoid(row[3 * hd + k]); // o
                }
            }

            for r in 0..batch {
                let g_row = gates.row(r);
                for k in 0..hd {
                    let ct = g_row[hd + k] * c_prev.get(r, k) + g_row[k] * g_row[2 * hd + k];
                    let tc = ct.tanh();
                    c.set(r, k, ct);
                    tanh_c.set(r, k, tc);
                    out.set(r, k, g_row[3 * hd + k] * tc);
                }
            }
        }
    }

    /// Back-propagation through time.
    ///
    /// `d_hs[t]` is `dL/dh_t` coming from the layer above (zero matrices
    /// for steps that do not feed the loss). Returns `dL/dx_t` for every
    /// step and the accumulated parameter gradients.
    pub fn backward_seq(&self, cache: &LstmSeqCache, d_hs: &[Matrix]) -> (Vec<Matrix>, LstmGrads) {
        let hd = self.hidden;
        let mut dwx = Matrix::zeros(self.wx.rows(), self.wx.cols());
        let mut dwh = Matrix::zeros(self.wh.rows(), self.wh.cols());
        let mut db = Matrix::zeros(1, 4 * hd);
        let mut dxs = Vec::new();
        let mut ws = Workspace::new();
        self.backward_seq_into(
            cache,
            d_hs,
            &mut dxs,
            LstmGradRefs { dwx: &mut dwx, dwh: &mut dwh, db: &mut db },
            &mut ws,
        );
        (dxs, LstmGrads { dwx, dwh, db })
    }

    /// Allocation-free BPTT: writes `dL/dx_t` into `dxs` and *accumulates*
    /// the parameter gradients into `grads` (callers zero them once per
    /// batch). Scratch buffers are borrowed from `ws`.
    pub fn backward_seq_into(
        &self,
        cache: &LstmSeqCache,
        d_hs: &[Matrix],
        dxs: &mut Vec<Matrix>,
        grads: LstmGradRefs<'_>,
        ws: &mut Workspace,
    ) {
        assert_eq!(d_hs.len(), cache.steps.len(), "backward_seq: length mismatch");
        assert_eq!(grads.dwx.shape(), self.wx.shape(), "backward_seq: dwx shape mismatch");
        assert_eq!(grads.dwh.shape(), self.wh.shape(), "backward_seq: dwh shape mismatch");
        assert_eq!(grads.db.shape(), self.b.shape(), "backward_seq: db shape mismatch");
        let t_len = cache.steps.len();
        let batch = cache.steps[0].x.rows();
        let hd = self.hidden;
        let input = self.input_dim();

        ws.ensure_seq(dxs, t_len, batch, input);
        let mut dh = ws.take(batch, hd);
        let mut dz = ws.take(batch, 4 * hd);
        let mut dc_prev = ws.take(batch, hd);
        let mut dh_next = ws.take_zeroed(batch, hd);
        let mut dc_next = ws.take_zeroed(batch, hd);
        let mut tmp_wx = ws.take(input, 4 * hd);
        let mut tmp_wh = ws.take(hd, 4 * hd);
        let mut tmp_db = ws.take(1, 4 * hd);
        // Transpose the weights once so the per-step input/hidden
        // gradients become plain matmuls over contiguous rows.
        let mut wx_t = ws.take(4 * hd, input);
        let mut wh_t = ws.take(4 * hd, hd);
        self.wx.transpose_into(&mut wx_t);
        self.wh.transpose_into(&mut wh_t);

        for t in (0..t_len).rev() {
            let step = &cache.steps[t];
            // Total gradient reaching h_t.
            dh.copy_from(&d_hs[t]);
            dh.add_assign(&dh_next);

            // Per-element gate gradients -> pre-activation gradients dz.
            // Every element of dz and dc_prev is overwritten each step.
            for r in 0..batch {
                let gates = step.gates.row(r);
                for k in 0..hd {
                    let i = gates[k];
                    let f = gates[hd + k];
                    let g = gates[2 * hd + k];
                    let o = gates[3 * hd + k];
                    let tc = step.tanh_c.get(r, k);
                    let dh_v = dh.get(r, k);

                    let do_ = dh_v * tc;
                    let dtc = dh_v * o;
                    let dc = dc_next.get(r, k) + dtc * (1.0 - tc * tc);

                    let di = dc * g;
                    let df = dc * step.c_prev.get(r, k);
                    let dg = dc * i;
                    dc_prev.set(r, k, dc * f);

                    let row = dz.row_mut(r);
                    row[k] = di * i * (1.0 - i);
                    row[hd + k] = df * f * (1.0 - f);
                    row[2 * hd + k] = dg * (1.0 - g * g);
                    row[3 * hd + k] = do_ * o * (1.0 - o);
                }
            }

            step.x.matmul_tn_into(&dz, &mut tmp_wx);
            grads.dwx.add_assign(&tmp_wx);
            step.h_prev.matmul_tn_into(&dz, &mut tmp_wh);
            grads.dwh.add_assign(&tmp_wh);
            dz.sum_rows_into(&mut tmp_db);
            grads.db.add_assign(&tmp_db);

            dz.matmul_into(&wx_t, &mut dxs[t]);
            dz.matmul_into(&wh_t, &mut dh_next);
            mem::swap(&mut dc_next, &mut dc_prev);
        }

        for buf in [dh, dz, dc_prev, dh_next, dc_next, tmp_wx, tmp_wh, tmp_db, wx_t, wh_t] {
            ws.recycle(buf);
        }
    }
}

impl Trainable for LstmLayer {
    fn params(&self) -> Vec<&Matrix> {
        vec![&self.wx, &self.wh, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    /// Loss = 0.5 * sum over all steps of ||h_t||^2, so dL/dh_t = h_t.
    fn seq_loss(layer: &LstmLayer, xs: &[Matrix]) -> f32 {
        let (hs, _) = layer.forward_seq(xs);
        hs.iter().map(|h| 0.5 * h.as_slice().iter().map(|v| v * v).sum::<f32>()).sum()
    }

    #[test]
    fn forward_shapes_and_state_propagation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let layer = LstmLayer::new(3, 4, &mut rng);
        let xs: Vec<Matrix> =
            (0..5).map(|_| nfv_tensor::uniform_in(2, 3, -1.0, 1.0, &mut rng)).collect();
        let (hs, _) = layer.forward_seq(&xs);
        assert_eq!(hs.len(), 5);
        for h in &hs {
            assert_eq!(h.shape(), (2, 4));
            assert!(!h.has_non_finite());
        }
        // Streaming inference must match the batched sequence forward.
        let mut state = LstmState::zeros(2, 4);
        for (t, x) in xs.iter().enumerate() {
            state = layer.step_infer(x, &state);
            for (a, b) in state.h.as_slice().iter().zip(hs[t].as_slice().iter()) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn hidden_stays_bounded() {
        // tanh/o-gate keep |h| <= 1 regardless of input magnitude.
        let mut rng = SmallRng::seed_from_u64(2);
        let layer = LstmLayer::new(2, 3, &mut rng);
        let xs: Vec<Matrix> =
            (0..20).map(|_| nfv_tensor::uniform_in(1, 2, -50.0, 50.0, &mut rng)).collect();
        let (hs, _) = layer.forward_seq(&xs);
        for h in &hs {
            assert!(h.max_abs() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn gradient_check_all_parameters() {
        let mut rng = SmallRng::seed_from_u64(21);
        let mut layer = LstmLayer::new(3, 2, &mut rng);
        let xs: Vec<Matrix> =
            (0..4).map(|_| nfv_tensor::uniform_in(2, 3, -1.0, 1.0, &mut rng)).collect();

        let (hs, cache) = layer.forward_seq(&xs);
        let d_hs: Vec<Matrix> = hs.clone();
        let (_, grads) = layer.backward_seq(&cache, &d_hs);
        let analytic = [&grads.dwx, &grads.dwh, &grads.db];

        let eps = 1e-2f32;
        for (pi, analytic_grad) in analytic.iter().enumerate() {
            let len = layer.params()[pi].as_slice().len();
            // Probe a deterministic sample of entries in each parameter.
            for idx in (0..len).step_by(1 + len / 7) {
                let orig = layer.params()[pi].as_slice()[idx];
                layer.params_mut()[pi].as_mut_slice()[idx] = orig + eps;
                let plus = seq_loss(&layer, &xs);
                layer.params_mut()[pi].as_mut_slice()[idx] = orig - eps;
                let minus = seq_loss(&layer, &xs);
                layer.params_mut()[pi].as_mut_slice()[idx] = orig;
                let numeric = (plus - minus) / (2.0 * eps);
                let a = analytic_grad.as_slice()[idx];
                assert!(
                    (a - numeric).abs() < 3e-2 * (1.0 + numeric.abs()),
                    "param {} idx {}: analytic {} vs numeric {}",
                    pi,
                    idx,
                    numeric,
                    a
                );
            }
        }
    }

    #[test]
    fn gradient_check_inputs() {
        let mut rng = SmallRng::seed_from_u64(33);
        let layer = LstmLayer::new(2, 3, &mut rng);
        let mut xs: Vec<Matrix> =
            (0..3).map(|_| nfv_tensor::uniform_in(1, 2, -1.0, 1.0, &mut rng)).collect();

        let (hs, cache) = layer.forward_seq(&xs);
        let (dxs, _) = layer.backward_seq(&cache, &hs);

        let eps = 1e-2f32;
        for t in 0..xs.len() {
            for idx in 0..xs[t].as_slice().len() {
                let orig = xs[t].as_slice()[idx];
                xs[t].as_mut_slice()[idx] = orig + eps;
                let plus = seq_loss(&layer, &xs);
                xs[t].as_mut_slice()[idx] = orig - eps;
                let minus = seq_loss(&layer, &xs);
                xs[t].as_mut_slice()[idx] = orig;
                let numeric = (plus - minus) / (2.0 * eps);
                let analytic = dxs[t].as_slice()[idx];
                assert!(
                    (analytic - numeric).abs() < 3e-2 * (1.0 + numeric.abs()),
                    "step {} idx {}: analytic {} vs numeric {}",
                    t,
                    idx,
                    analytic,
                    numeric
                );
            }
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = SmallRng::seed_from_u64(4);
        let layer = LstmLayer::new(2, 3, &mut rng);
        let b = layer.params()[2];
        for k in 0..3 {
            assert_eq!(b.get(0, k), 0.0, "input-gate bias");
            assert_eq!(b.get(0, 3 + k), 1.0, "forget-gate bias");
            assert_eq!(b.get(0, 6 + k), 0.0, "cell-gate bias");
            assert_eq!(b.get(0, 9 + k), 0.0, "output-gate bias");
        }
    }
}
