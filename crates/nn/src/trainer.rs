//! The shared training loop: batching, shuffling, gradient clipping,
//! frozen-parameter masking, LR scheduling, and a loss trace.
//!
//! Every model in the workspace trains through one code path. A model
//! implements [`BatchLoss`] — "given these sample indices, accumulate
//! batch gradients into this [`GradientSet`] and return the loss" — and
//! [`Trainer`] owns everything around it: the optimizer, the epoch/batch
//! loop, deterministic shuffling, clipping, masking of frozen parameters,
//! and per-step/per-epoch loss traces. This replaces the near-identical
//! loops that used to live in `lstm_detector.rs`, `baselines.rs`, and the
//! `Mlp` autoencoder path.

use crate::optimizer::Optimizer;
use crate::Trainable;
use nfv_tensor::Matrix;
use rand::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default gradient-clipping limit (matches the pre-refactor constant
/// used by `SequenceModel::train_step`).
pub const DEFAULT_GRAD_CLIP: f32 = 5.0;

/// Default rows per gradient shard in the data-parallel path (see
/// [`Trainer::train_batch_sharded`]). The shard layout is a pure function
/// of the batch's index order and this width — never of the thread count
/// — so any worker count produces the same bits.
pub const DEFAULT_SHARD_ROWS: usize = 16;

/// Upper bound on shards per batch used by auto shard sizing
/// (`shard_rows == 0`): the resolved width is
/// `DEFAULT_SHARD_ROWS.max(batch_size / MAX_SHARDS_PER_BATCH)`, so small
/// batches keep the historical 16-row layout (bit-compatible with every
/// recorded trajectory at the default batch size) while very large
/// batches get proportionally beefier shards instead of thousands of
/// tiny reduction steps.
pub const MAX_SHARDS_PER_BATCH: usize = 16;

/// Batches with fewer rows than this run their shards on the calling
/// thread even when `threads > 1`: at small batch sizes the per-step
/// scoped-spawn overhead exceeds the parallel win (the 0.90x/0.82x
/// regression recorded in `results/BENCH_fleet_epoch.json`). This is
/// scheduling only — the shard layout and the ascending-shard reduction
/// order are untouched, so the bits are identical either way.
pub const PAR_MIN_BATCH_ROWS: usize = 512;

/// Knobs for a [`Trainer`] run. The learning rate lives on the optimizer.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Number of passes over the index set per `fit` call.
    pub epochs: usize,
    /// Mini-batch size (clamped to at least 1).
    pub batch_size: usize,
    /// Per-element gradient clip applied before each optimizer step.
    pub grad_clip: f32,
    /// Multiplicative LR decay applied after each epoch (1.0 = constant).
    pub lr_decay: f32,
    /// Whether to reshuffle the index order each epoch.
    pub shuffle: bool,
    /// Worker threads for the sharded data-parallel path (clamped to at
    /// least 1). The thread count only schedules the fixed shard layout;
    /// it never changes the math, so 1, 2 and 8 workers produce
    /// bit-identical losses and parameters.
    pub threads: usize,
    /// Rows per gradient shard in the data-parallel path. Unlike
    /// `threads`, this *is* part of the trajectory definition: changing
    /// the shard width changes summation order (and therefore rounding).
    ///
    /// `0` = auto: the width is derived from `batch_size` alone (see
    /// [`TrainerConfig::resolved_shard_rows`]), so it stays a pure
    /// function of the configuration — never of the thread count — and
    /// resolves to the historical [`DEFAULT_SHARD_ROWS`] at the default
    /// batch size.
    pub shard_rows: usize,
}

impl TrainerConfig {
    /// The shard width the data-parallel path will actually use:
    /// `shard_rows` itself when explicit, otherwise auto-sized from the
    /// batch size (`DEFAULT_SHARD_ROWS.max(batch_size /
    /// MAX_SHARDS_PER_BATCH)`). Deliberately independent of `threads`:
    /// the layout defines the trajectory, threads only schedule it.
    pub fn resolved_shard_rows(&self) -> usize {
        if self.shard_rows == 0 {
            DEFAULT_SHARD_ROWS.max(self.batch_size.max(1).div_ceil(MAX_SHARDS_PER_BATCH))
        } else {
            self.shard_rows
        }
    }
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 1,
            batch_size: 64,
            grad_clip: DEFAULT_GRAD_CLIP,
            lr_decay: 1.0,
            shuffle: true,
            threads: 1,
            shard_rows: 0,
        }
    }
}

/// Typed training failure.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The batch loss went NaN/inf; training stopped before the optimizer
    /// step so the model still holds the last finite parameters.
    NonFiniteLoss {
        /// Global step index (number of completed optimizer steps).
        step: usize,
        /// The offending loss value.
        loss: f32,
    },
    /// A data-parallel worker panicked while computing a shard's
    /// gradients. The panic is contained: the optimizer step is skipped,
    /// the parameters still hold the last completed step, and the trainer
    /// (including its worker pool) stays usable.
    WorkerPanic {
        /// Lowest shard index (in shard order) whose computation panicked.
        shard: usize,
        /// The panic payload, when it carried a string.
        message: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NonFiniteLoss { step, loss } => {
                write!(f, "non-finite loss {loss} at training step {step}")
            }
            TrainError::WorkerPanic { shard, message } => {
                write!(f, "worker panicked on gradient shard {shard}: {message}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// A persistent set of gradient accumulators, one per model parameter,
/// shaped once and zeroed (not reallocated) between steps.
#[derive(Debug, Clone, Default)]
pub struct GradientSet {
    mats: Vec<Matrix>,
}

impl GradientSet {
    /// Allocates one zeroed accumulator per parameter shape.
    pub fn new(shapes: &[(usize, usize)]) -> GradientSet {
        GradientSet { mats: shapes.iter().map(|&(r, c)| Matrix::zeros(r, c)).collect() }
    }

    /// Number of parameter slots.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// True when the set holds no slots.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Zeroes every accumulator in place (no reallocation).
    pub fn zero(&mut self) {
        for m in &mut self.mats {
            m.fill_zero();
        }
    }

    /// Clips every accumulator elementwise to `[-limit, limit]`.
    pub fn clip(&mut self, limit: f32) {
        for m in &mut self.mats {
            m.clip_inplace(limit);
        }
    }

    /// Immutable view of one slot.
    pub fn get(&self, i: usize) -> &Matrix {
        &self.mats[i]
    }

    /// Mutable view of one slot.
    pub fn get_mut(&mut self, i: usize) -> &mut Matrix {
        &mut self.mats[i]
    }

    /// Mutable view of all slots (for backward passes that index into
    /// disjoint slots via slice patterns).
    pub fn slots_mut(&mut self) -> &mut [Matrix] {
        &mut self.mats
    }

    /// Optimizer-ready gradient refs with the first `frozen` slots masked
    /// out as `None` (those parameters receive no update).
    pub fn masked_refs(&self, frozen: usize) -> Vec<Option<&Matrix>> {
        self.mats.iter().enumerate().map(|(i, m)| if i < frozen { None } else { Some(m) }).collect()
    }

    /// Shapes of every slot, in order.
    pub fn shapes(&self) -> Vec<(usize, usize)> {
        self.mats.iter().map(|m| m.shape()).collect()
    }

    /// Elementwise-accumulates `other` into `self` (the shard-reduction
    /// primitive of the data-parallel path).
    pub fn add_from(&mut self, other: &GradientSet) {
        assert_eq!(self.mats.len(), other.mats.len(), "GradientSet: slot count mismatch");
        for (a, b) in self.mats.iter_mut().zip(&other.mats) {
            a.add_assign(b);
        }
    }
}

/// A model that can compute batch gradients for some dataset type `D`.
///
/// `batch_gradients` must *accumulate* into `grads` (the trainer zeroes
/// the set before each batch) and return the mean batch loss.
pub trait BatchLoss<D: ?Sized>: Trainable {
    /// Accumulates gradients for the samples at `indices` and returns the
    /// mean loss over the batch.
    fn batch_gradients(&mut self, data: &D, indices: &[usize], grads: &mut GradientSet) -> f32;

    /// Number of leading parameters whose gradients are masked out
    /// (frozen) during optimization. Defaults to none.
    fn frozen_params(&self) -> usize {
        0
    }
}

/// A [`BatchLoss`] model whose gradient computation can run shard-wise
/// from a shared `&self`, with every piece of mutable state living in a
/// caller-provided worker context. This is the contract the deterministic
/// data-parallel path needs: N workers share the model immutably while
/// each fills its own context and per-shard [`GradientSet`].
pub trait ShardedBatchLoss<D: ?Sized + Sync>: BatchLoss<D> + Sync {
    /// Thread-local scratch state (forward/backward caches, workspaces).
    type Worker: Default + Send;

    /// Accumulates gradients for the shard at `indices` into `grads`,
    /// normalized by `total` (the whole mini-batch's row count), and
    /// returns the shard's *unnormalized* loss sum.
    ///
    /// Contract: summing the per-shard gradient sets in ascending shard
    /// order and dividing the summed losses by `total` must reproduce the
    /// batched mean gradient and loss. With a single shard
    /// (`indices.len() == total`) the result must be bit-identical to
    /// [`BatchLoss::batch_gradients`].
    fn shard_gradients(
        &self,
        data: &D,
        indices: &[usize],
        total: usize,
        worker: &mut Self::Worker,
        grads: &mut GradientSet,
    ) -> f32;
}

/// Per-worker execution state for the data-parallel trainer path: one
/// scratch context per worker thread plus one gradient accumulator and
/// loss slot per shard. Shaped lazily on first use and reused across
/// batches, so steady-state parallel steps allocate nothing.
#[derive(Debug, Default)]
pub struct ShardPool<W> {
    workers: Vec<W>,
    shard_grads: Vec<GradientSet>,
    shard_losses: Vec<f32>,
}

impl<W: Default> ShardPool<W> {
    /// An empty pool; the trainer shapes it on first use.
    pub fn new() -> ShardPool<W> {
        ShardPool { workers: Vec::new(), shard_grads: Vec::new(), shard_losses: Vec::new() }
    }

    /// Grows the pool to `workers` contexts and `shards` zeroed gradient
    /// accumulators of the given parameter shapes.
    fn ensure(&mut self, workers: usize, shards: usize, shapes: &[(usize, usize)]) {
        if self.workers.len() < workers {
            self.workers.resize_with(workers, W::default);
        }
        while self.shard_grads.len() < shards {
            self.shard_grads.push(GradientSet::new(shapes));
        }
        if self.shard_losses.len() < shards {
            self.shard_losses.resize(shards, 0.0);
        }
        for g in &mut self.shard_grads[..shards] {
            g.zero();
        }
    }
}

/// Renders a caught panic payload for [`TrainError::WorkerPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Clips `grads`, masks the first `frozen` slots, and applies one
/// optimizer step to `model`'s parameters.
pub(crate) fn clip_and_apply<M: Trainable + ?Sized>(
    model: &mut M,
    grads: &mut GradientSet,
    frozen: usize,
    clip: f32,
    opt: &mut dyn Optimizer,
) {
    grads.clip(clip);
    let masked = grads.masked_refs(frozen);
    let mut params = model.params_mut();
    opt.step(&mut params, &masked);
}

/// In-place Fisher-Yates shuffle.
///
/// Deliberately identical to `nfv_ml::sampling::shuffle` (same swap
/// sequence per rng draw) so detectors that migrated from the old
/// hand-rolled epoch loops see an unchanged rng stream and reproduce
/// their pre-refactor trajectories bit-for-bit.
fn shuffle_indices(items: &mut [usize], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Owns the optimizer and drives the epoch/batch loop for any
/// [`BatchLoss`] model.
#[derive(Debug)]
pub struct Trainer<O: Optimizer> {
    cfg: TrainerConfig,
    opt: O,
    grads: GradientSet,
    step_losses: Vec<f32>,
    epoch_losses: Vec<f32>,
}

impl<O: Optimizer> Trainer<O> {
    /// Builds a trainer for a model with the given parameter shapes.
    pub fn new(cfg: TrainerConfig, opt: O, shapes: &[(usize, usize)]) -> Trainer<O> {
        Trainer {
            cfg,
            opt,
            grads: GradientSet::new(shapes),
            step_losses: Vec::new(),
            epoch_losses: Vec::new(),
        }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Borrow of the owned optimizer.
    pub fn optimizer(&self) -> &O {
        &self.opt
    }

    /// Mutable borrow of the owned optimizer (e.g. to retune the LR).
    pub fn optimizer_mut(&mut self) -> &mut O {
        &mut self.opt
    }

    /// Loss of every completed optimizer step, in order.
    pub fn step_losses(&self) -> &[f32] {
        &self.step_losses
    }

    /// Mean loss of every completed epoch, in order.
    pub fn epoch_losses(&self) -> &[f32] {
        &self.epoch_losses
    }

    /// Runs one optimizer step on the samples at `indices`.
    ///
    /// Returns the batch loss, or [`TrainError::NonFiniteLoss`] *before*
    /// touching the parameters when the loss is NaN/inf.
    pub fn train_batch<D: ?Sized, M: BatchLoss<D>>(
        &mut self,
        model: &mut M,
        data: &D,
        indices: &[usize],
    ) -> Result<f32, TrainError> {
        self.grads.zero();
        let loss = model.batch_gradients(data, indices, &mut self.grads);
        if !loss.is_finite() {
            return Err(TrainError::NonFiniteLoss { step: self.step_losses.len(), loss });
        }
        let frozen = model.frozen_params();
        clip_and_apply(model, &mut self.grads, frozen, self.cfg.grad_clip, &mut self.opt);
        self.step_losses.push(loss);
        Ok(loss)
    }

    /// Trains on all samples `0..n`, shuffling each epoch. Returns the
    /// mean loss of the final epoch.
    pub fn fit<D: ?Sized, M: BatchLoss<D>>(
        &mut self,
        model: &mut M,
        data: &D,
        n: usize,
        rng: &mut impl Rng,
    ) -> Result<f32, TrainError> {
        let indices: Vec<usize> = (0..n).collect();
        self.fit_indices(model, data, &indices, rng)
    }

    /// Trains on an explicit index set (e.g. an oversampled mix).
    /// Returns the mean loss of the final epoch.
    pub fn fit_indices<D: ?Sized, M: BatchLoss<D>>(
        &mut self,
        model: &mut M,
        data: &D,
        indices: &[usize],
        rng: &mut impl Rng,
    ) -> Result<f32, TrainError> {
        if indices.is_empty() {
            return Ok(0.0);
        }
        let mut order = indices.to_vec();
        let batch = self.cfg.batch_size.max(1);
        let mut last_epoch_mean = 0.0;
        for _epoch in 0..self.cfg.epochs {
            if self.cfg.shuffle {
                shuffle_indices(&mut order, rng);
            }
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                total += self.train_batch(model, data, chunk)? as f64;
                batches += 1;
            }
            last_epoch_mean = (total / batches.max(1) as f64) as f32;
            self.epoch_losses.push(last_epoch_mean);
            if self.cfg.lr_decay != 1.0 {
                let lr = self.opt.learning_rate() * self.cfg.lr_decay;
                self.opt.set_learning_rate(lr);
            }
        }
        Ok(last_epoch_mean)
    }

    /// Runs one optimizer step with the batch split into fixed,
    /// index-ordered shards of `cfg.shard_rows` rows, computed by up to
    /// `cfg.threads` workers and reduced into the master [`GradientSet`]
    /// in ascending shard order.
    ///
    /// The shard layout and the reduction order depend only on `indices`
    /// and `shard_rows` — never on the thread count — so the loss and the
    /// parameter update are bit-identical for every `threads` value. A
    /// batch that fits in one shard takes the exact serial
    /// [`Trainer::train_batch`] code path (same bits). A panic inside a
    /// worker is contained and surfaced as [`TrainError::WorkerPanic`];
    /// the optimizer step is skipped and the trainer stays usable.
    pub fn train_batch_sharded<D, M>(
        &mut self,
        model: &mut M,
        data: &D,
        indices: &[usize],
        pool: &mut ShardPool<M::Worker>,
    ) -> Result<f32, TrainError>
    where
        D: ?Sized + Sync,
        M: ShardedBatchLoss<D>,
    {
        let total = indices.len();
        let shard_rows = self.cfg.resolved_shard_rows().max(1);
        let n_shards = total.div_ceil(shard_rows).max(1);
        self.grads.zero();
        let loss = if n_shards == 1 {
            pool.ensure(1, 0, &[]);
            let sum =
                model.shard_gradients(data, indices, total, &mut pool.workers[0], &mut self.grads);
            sum / total as f32
        } else {
            let shards: Vec<&[usize]> = indices.chunks(shard_rows).collect();
            // Small batches stay on the calling thread: per-step
            // dispatch overhead beats the parallel win below
            // PAR_MIN_BATCH_ROWS (and the serial path lets the GEMMs
            // inside the shard use the row-panel fan-out instead).
            // Larger batches resolve their worker count through the
            // pool's unified policy (host-core cap, shard-count cap).
            // The shard layout above is already fixed, so both are pure
            // scheduling and the bits are unchanged.
            let workers = if total < PAR_MIN_BATCH_ROWS {
                1
            } else {
                nfv_pool::resolve_workers(self.cfg.threads, n_shards)
            };
            let shapes = self.grads.shapes();
            pool.ensure(workers, n_shards, &shapes);
            let block = n_shards.div_ceil(workers);
            let ShardPool { workers: ctxs, shard_grads, shard_losses } = &mut *pool;
            let model_ref: &M = model;
            // One worker's share: a contiguous block of shards, each
            // computed into its own pre-zeroed accumulator. Panics are
            // caught per shard so one bad sample cannot poison the pool.
            let run_block = |start: usize,
                             shard_block: &[&[usize]],
                             ctx: &mut M::Worker,
                             grads_block: &mut [GradientSet],
                             loss_block: &mut [f32]|
             -> Option<(usize, String)> {
                let per_shard =
                    shard_block.iter().zip(grads_block.iter_mut().zip(loss_block.iter_mut()));
                for (off, (shard, (g, l))) in per_shard.enumerate() {
                    match catch_unwind(AssertUnwindSafe(|| {
                        model_ref.shard_gradients(data, shard, total, ctx, g)
                    })) {
                        Ok(sum) => *l = sum,
                        Err(payload) => return Some((start + off, panic_message(payload))),
                    }
                }
                None
            };
            let panicked = if workers == 1 {
                run_block(
                    0,
                    &shards,
                    &mut ctxs[0],
                    &mut shard_grads[..n_shards],
                    &mut shard_losses[..n_shards],
                )
            } else {
                // Worker-block w runs as the w-th task of a persistent
                // pool scope: fixed worker identity, no per-step thread
                // spawn. Each task writes only its own result slot;
                // the lowest panicking shard wins deterministically.
                let mut results: Vec<Option<(usize, String)>> = vec![None; workers];
                nfv_pool::global().scope(|scope| {
                    for ((w, (((sb, gb), lb), ctx)), slot) in shards
                        .chunks(block)
                        .zip(shard_grads[..n_shards].chunks_mut(block))
                        .zip(shard_losses[..n_shards].chunks_mut(block))
                        .zip(ctxs.iter_mut())
                        .enumerate()
                        .zip(results.iter_mut())
                    {
                        let run = &run_block;
                        scope.spawn(move || *slot = run(w * block, sb, ctx, gb, lb));
                    }
                });
                let mut first: Option<(usize, String)> = None;
                for res in results.into_iter().flatten() {
                    let (s, m) = res;
                    if first.as_ref().is_none_or(|(fs, _)| s < *fs) {
                        first = Some((s, m));
                    }
                }
                first
            };
            if let Some((shard, message)) = panicked {
                return Err(TrainError::WorkerPanic { shard, message });
            }
            // Deterministic reduction: ascending shard order, fixed per
            // batch regardless of which worker produced which shard.
            let mut sum = 0.0f32;
            for (g, l) in shard_grads[..n_shards].iter().zip(&shard_losses[..n_shards]) {
                self.grads.add_from(g);
                sum += *l;
            }
            sum / total as f32
        };
        if !loss.is_finite() {
            return Err(TrainError::NonFiniteLoss { step: self.step_losses.len(), loss });
        }
        let frozen = model.frozen_params();
        clip_and_apply(model, &mut self.grads, frozen, self.cfg.grad_clip, &mut self.opt);
        self.step_losses.push(loss);
        Ok(loss)
    }

    /// Data-parallel [`Trainer::fit`]: trains on all samples `0..n`
    /// through [`Trainer::train_batch_sharded`].
    pub fn fit_sharded<D, M>(
        &mut self,
        model: &mut M,
        data: &D,
        n: usize,
        rng: &mut impl Rng,
    ) -> Result<f32, TrainError>
    where
        D: ?Sized + Sync,
        M: ShardedBatchLoss<D>,
    {
        let indices: Vec<usize> = (0..n).collect();
        self.fit_indices_sharded(model, data, &indices, rng)
    }

    /// Data-parallel [`Trainer::fit_indices`]: identical epoch, batch,
    /// shuffle and LR-decay schedule, with every batch stepped through
    /// [`Trainer::train_batch_sharded`]. The worker pool is allocated
    /// once per call and reused across all batches and epochs.
    pub fn fit_indices_sharded<D, M>(
        &mut self,
        model: &mut M,
        data: &D,
        indices: &[usize],
        rng: &mut impl Rng,
    ) -> Result<f32, TrainError>
    where
        D: ?Sized + Sync,
        M: ShardedBatchLoss<D>,
    {
        if indices.is_empty() {
            return Ok(0.0);
        }
        let mut pool = ShardPool::new();
        let mut order = indices.to_vec();
        let batch = self.cfg.batch_size.max(1);
        let mut last_epoch_mean = 0.0;
        for _epoch in 0..self.cfg.epochs {
            if self.cfg.shuffle {
                shuffle_indices(&mut order, rng);
            }
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                total += self.train_batch_sharded(model, data, chunk, &mut pool)? as f64;
                batches += 1;
            }
            last_epoch_mean = (total / batches.max(1) as f64) as f32;
            self.epoch_losses.push(last_epoch_mean);
            if self.cfg.lr_decay != 1.0 {
                let lr = self.opt.learning_rate() * self.cfg.lr_decay;
                self.opt.set_learning_rate(lr);
            }
        }
        Ok(last_epoch_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// y = w * x fitted to y = 2x on one scalar parameter.
    struct Scalar {
        w: Matrix,
    }

    impl Trainable for Scalar {
        fn params(&self) -> Vec<&Matrix> {
            vec![&self.w]
        }
        fn params_mut(&mut self) -> Vec<&mut Matrix> {
            vec![&mut self.w]
        }
    }

    impl BatchLoss<[f32]> for Scalar {
        fn batch_gradients(
            &mut self,
            data: &[f32],
            indices: &[usize],
            grads: &mut GradientSet,
        ) -> f32 {
            let w = self.w.get(0, 0);
            let mut loss = 0.0;
            let mut g = 0.0;
            for &i in indices {
                let x = data[i];
                let err = w * x - 2.0 * x;
                loss += err * err;
                g += 2.0 * err * x;
            }
            let n = indices.len() as f32;
            let slot = grads.get_mut(0);
            slot.set(0, 0, slot.get(0, 0) + g / n);
            loss / n
        }
    }

    #[test]
    fn fit_converges_and_traces_losses() {
        let mut model = Scalar { w: Matrix::zeros(1, 1) };
        let data: Vec<f32> = (1..=8).map(|i| i as f32 * 0.25).collect();
        let cfg = TrainerConfig { epochs: 40, batch_size: 4, ..TrainerConfig::default() };
        let mut trainer = Trainer::new(cfg, Sgd::new(0.05, 0.0, &[(1, 1)]), &[(1, 1)]);
        let mut rng = SmallRng::seed_from_u64(3);
        let last = trainer.fit(&mut model, data.as_slice(), data.len(), &mut rng).unwrap();
        assert!(last < 1e-3, "final epoch loss {last}");
        assert!((model.w.get(0, 0) - 2.0).abs() < 0.05);
        assert_eq!(trainer.epoch_losses().len(), 40);
        assert_eq!(trainer.step_losses().len(), 40 * 2);
        // Losses should broadly decrease.
        assert!(trainer.epoch_losses()[39] < trainer.epoch_losses()[0]);
    }

    #[test]
    fn lr_decay_shrinks_learning_rate_per_epoch() {
        let mut model = Scalar { w: Matrix::zeros(1, 1) };
        let data = [1.0f32, 2.0];
        let cfg = TrainerConfig {
            epochs: 3,
            batch_size: 2,
            lr_decay: 0.5,
            shuffle: false,
            ..TrainerConfig::default()
        };
        let mut trainer = Trainer::new(cfg, Sgd::new(0.1, 0.0, &[(1, 1)]), &[(1, 1)]);
        let mut rng = SmallRng::seed_from_u64(0);
        trainer.fit(&mut model, data.as_slice(), 2, &mut rng).unwrap();
        let lr = trainer.optimizer().learning_rate();
        assert!((lr - 0.1 * 0.125).abs() < 1e-9, "lr after 3 decays: {lr}");
    }

    #[test]
    fn empty_index_set_is_a_noop() {
        let mut model = Scalar { w: Matrix::filled(1, 1, 1.5) };
        let data = [1.0f32];
        let mut trainer =
            Trainer::new(TrainerConfig::default(), Sgd::new(0.1, 0.0, &[(1, 1)]), &[(1, 1)]);
        let mut rng = SmallRng::seed_from_u64(0);
        let loss = trainer.fit_indices(&mut model, data.as_slice(), &[], &mut rng).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(model.w.get(0, 0), 1.5);
        assert!(trainer.step_losses().is_empty());
    }

    #[test]
    fn gradient_set_zero_and_clip() {
        let mut gs = GradientSet::new(&[(2, 2), (1, 3)]);
        assert_eq!(gs.len(), 2);
        assert!(!gs.is_empty());
        gs.get_mut(0).set(1, 1, 10.0);
        gs.get_mut(1).set(0, 2, -10.0);
        gs.clip(1.0);
        assert_eq!(gs.get(0).get(1, 1), 1.0);
        assert_eq!(gs.get(1).get(0, 2), -1.0);
        gs.zero();
        assert_eq!(gs.get(0).get(1, 1), 0.0);
        let masked = gs.masked_refs(1);
        assert!(masked[0].is_none());
        assert!(masked[1].is_some());
    }
}
