//! JSON checkpointing of model parameters.
//!
//! Checkpoints are deliberately simple: a tag identifying the
//! architecture family, a flat list of architecture dimensions, and the
//! parameter matrices in optimizer order. JSON keeps them human-
//! inspectable, which matters when debugging transfer-learning weight
//! copies.

use nfv_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// A serializable dump of one parameter matrix.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct MatrixDump {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major data.
    pub data: Vec<f32>,
}

impl MatrixDump {
    /// Captures a matrix.
    pub fn from_matrix(m: &Matrix) -> Self {
        MatrixDump { rows: m.rows(), cols: m.cols(), data: m.as_slice().to_vec() }
    }

    /// Rebuilds the matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.clone())
    }
}

/// A serialized model: architecture tag, dimensions, and parameters.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Checkpoint {
    /// Architecture family, e.g. `"sequence-model"` or `"mlp"`.
    pub tag: String,
    /// Architecture dimensions, interpreted per tag.
    pub dims: Vec<usize>,
    /// Parameter matrices in optimizer order.
    pub params: Vec<MatrixDump>,
}

impl Checkpoint {
    /// Writes the checkpoint as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string(self).map_err(io::Error::other)?;
        fs::write(path, json)
    }

    /// Reads a checkpoint written by [`Checkpoint::save`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(io::Error::other)
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.params.iter().map(|p| p.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_dump_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let dump = MatrixDump::from_matrix(&m);
        assert_eq!(dump.to_matrix().as_slice(), m.as_slice());
    }

    #[test]
    fn file_roundtrip() {
        let ckpt = Checkpoint {
            tag: "test".to_string(),
            dims: vec![1, 2, 3],
            params: vec![MatrixDump { rows: 1, cols: 2, data: vec![0.5, -0.5] }],
        };
        let dir = std::env::temp_dir().join("nfv_nn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        assert_eq!(loaded.parameter_count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
