//! JSON checkpointing of model parameters, with integrity protection.
//!
//! Checkpoints are deliberately simple: a tag identifying the
//! architecture family, a flat list of architecture dimensions, and the
//! parameter matrices in optimizer order. JSON keeps them human-
//! inspectable, which matters when debugging transfer-learning weight
//! copies.
//!
//! On disk every checkpoint is wrapped in an *envelope*:
//!
//! ```json
//! {"checksum":"<fnv1a64 hex>","format":"nfv-checkpoint","payload":{...},"version":1}
//! ```
//!
//! The checksum is FNV-1a 64 over the canonical (key-sorted, no
//! whitespace) serialization of the payload, so a flipped byte or a
//! truncated file is reported as a typed [`CheckpointError`] instead of
//! producing a silently-wrong model. Saves are atomic (temp file +
//! rename) so a crash mid-write can never leave a half-written
//! checkpoint at the destination path.

use nfv_tensor::Matrix;
use serde_json::{json, Value};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Duration;

/// On-disk format marker for model checkpoints.
pub const CHECKPOINT_FORMAT: &str = "nfv-checkpoint";
/// Current envelope version. Readers reject anything newer.
pub const ENVELOPE_VERSION: u64 = 1;

/// Typed failure modes of checkpoint/bundle persistence.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (open, read, write, rename).
    Io(io::Error),
    /// The file is not well-formed JSON (truncation, garbage bytes).
    Json {
        /// Byte offset of the first parse failure.
        offset: usize,
        /// Parser message.
        msg: String,
    },
    /// The envelope's `format` field names a different artifact kind.
    BadFormat {
        /// Format the reader expected.
        expected: String,
        /// Format found in the file.
        found: String,
    },
    /// The envelope was written by a newer, unknown version.
    UnsupportedVersion {
        /// Version found in the file.
        found: u64,
        /// Newest version this reader understands.
        supported: u64,
    },
    /// The payload does not hash to the recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        expected: String,
        /// Checksum recomputed from the payload.
        actual: String,
    },
    /// A required field is absent or has the wrong JSON type.
    MissingField(String),
    /// A matrix's data length disagrees with its declared shape.
    ShapeMismatch {
        /// Declared row count.
        rows: usize,
        /// Declared column count.
        cols: usize,
        /// Actual element count.
        len: usize,
    },
    /// The checkpoint is structurally valid JSON but semantically wrong
    /// for the model family decoding it (bad tag, dims, param count).
    Invalid(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {}", e),
            CheckpointError::Json { offset, msg } => {
                write!(f, "malformed JSON at byte {}: {}", offset, msg)
            }
            CheckpointError::BadFormat { expected, found } => {
                write!(f, "wrong artifact format: expected {:?}, found {:?}", expected, found)
            }
            CheckpointError::UnsupportedVersion { found, supported } => {
                write!(f, "envelope version {} is newer than supported {}", found, supported)
            }
            CheckpointError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: recorded {}, computed {}", expected, actual)
            }
            CheckpointError::MissingField(name) => {
                write!(f, "missing or mistyped field {:?}", name)
            }
            CheckpointError::ShapeMismatch { rows, cols, len } => {
                write!(
                    f,
                    "matrix shape {}x{} needs {} values, got {}",
                    rows,
                    cols,
                    rows * cols,
                    len
                )
            }
            CheckpointError::Invalid(msg) => write!(f, "invalid checkpoint: {}", msg),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Json { offset: e.offset, msg: e.to_string() }
    }
}

/// FNV-1a 64 over a byte string; the envelope checksum primitive.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Wraps a payload value in a checksummed envelope and serializes it.
pub fn seal_envelope(format: &str, payload: Value) -> String {
    let canonical = payload.to_string();
    let checksum = format!("{:016x}", fnv1a64(canonical.as_bytes()));
    json!({
        "format": format,
        "version": ENVELOPE_VERSION,
        "checksum": checksum,
        "payload": payload,
    })
    .to_string()
}

/// Parses envelope text, verifying format, version, and checksum, and
/// returns the payload value.
pub fn open_envelope(format: &str, text: &str) -> Result<Value, CheckpointError> {
    let value = serde_json::from_str(text)?;
    let found_format = value
        .get("format")
        .and_then(|v| v.as_str())
        .ok_or_else(|| CheckpointError::MissingField("format".into()))?;
    if found_format != format {
        return Err(CheckpointError::BadFormat {
            expected: format.to_string(),
            found: found_format.to_string(),
        });
    }
    let version = value
        .get("version")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| CheckpointError::MissingField("version".into()))?;
    if version > ENVELOPE_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: ENVELOPE_VERSION,
        });
    }
    let recorded = value
        .get("checksum")
        .and_then(|v| v.as_str())
        .ok_or_else(|| CheckpointError::MissingField("checksum".into()))?
        .to_string();
    let payload = value
        .get("payload")
        .cloned()
        .ok_or_else(|| CheckpointError::MissingField("payload".into()))?;
    let actual = format!("{:016x}", fnv1a64(payload.to_string().as_bytes()));
    if recorded != actual {
        return Err(CheckpointError::ChecksumMismatch { expected: recorded, actual });
    }
    Ok(payload)
}

/// Writes `contents` to `path` atomically **and durably**: the bytes
/// land in a sibling temp file which is then renamed over the
/// destination, so readers observe either the old file or the complete
/// new one, never a prefix.
///
/// The fsync ordering matters for crash durability, not just
/// atomicity:
///
/// 1. write the temp file's bytes;
/// 2. `sync_all` the temp file — the data must be on stable storage
///    *before* the rename, otherwise a power loss after the rename
///    commits can leave the destination pointing at never-written
///    blocks (a zero-length or garbage file with the right name);
/// 3. rename over the destination (atomic on POSIX filesystems);
/// 4. fsync the parent directory — the rename itself is a directory
///    entry update, and without this step a crash can roll the
///    directory back to the old entry even though step 3 returned.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    atomic_write_tagged(path, contents, "io.atomic")
}

/// [`atomic_write`] with a caller-chosen failpoint namespace: the write
/// evaluates `{tag}.create`, `{tag}.write`, and `{tag}.rename`
/// failpoints (see `nfv_fail`), so chaos tests can target one artifact
/// kind (`ckpt.save.rename`) without faulting every other writer.
///
/// A `torn` policy on `{tag}.write` persists only the configured
/// fraction of the bytes and then *reports success* — simulating a
/// crash or firmware lie mid-write that the next reader must catch by
/// checksum.
pub fn atomic_write_tagged(path: &Path, contents: &str, tag: &str) -> io::Result<()> {
    nfv_fail::io_check(&format!("{tag}.create"))?;
    let torn = match nfv_fail::point(&format!("{tag}.write")) {
        nfv_fail::Outcome::Pass => None,
        nfv_fail::Outcome::Err => {
            return Err(io::Error::other(format!("failpoint {tag}.write injected a write error")))
        }
        nfv_fail::Outcome::Torn(frac) => {
            Some(((contents.len() as f64 * frac as f64) as usize).min(contents.len()))
        }
    };
    let bytes = match torn {
        Some(cut) => &contents.as_bytes()[..cut],
        None => contents.as_bytes(),
    };
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, bytes)?;
        if let Err(e) = f.sync_all() {
            drop(f);
            fs::remove_file(&tmp).ok();
            return Err(e);
        }
    }
    if let Err(e) = nfv_fail::io_check(&format!("{tag}.rename")) {
        fs::remove_file(&tmp).ok();
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, path) {
        fs::remove_file(&tmp).ok();
        return Err(e);
    }
    // Persist the directory entry. Some platforms cannot fsync a
    // directory handle (or opening one fails); that only weakens
    // durability of the rename, never atomicity, so it is best-effort.
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads `path`, retrying transient i/o failures with doubling backoff.
/// Integrity failures (bad checksum, malformed JSON) are permanent and
/// surface immediately. `parse` maps file text to the artifact.
pub fn load_with_retry<T>(
    path: &Path,
    attempts: u32,
    initial_backoff: Duration,
    parse: impl Fn(&str) -> Result<T, CheckpointError>,
) -> Result<T, CheckpointError> {
    let mut backoff = initial_backoff;
    let mut last_io: Option<io::Error> = None;
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
        match fs::read_to_string(path) {
            // An `Io` error out of `parse` is transient too (e.g. an
            // injected failpoint or a flaky network filesystem read
            // surfaced mid-parse) — retry it like a read failure.
            Ok(text) => match parse(&text) {
                Err(CheckpointError::Io(e)) => last_io = Some(e),
                other => return other,
            },
            Err(e) => last_io = Some(e),
        }
    }
    Err(CheckpointError::Io(last_io.expect("at least one read attempt")))
}

fn get_usize(obj: &Value, field: &str) -> Result<usize, CheckpointError> {
    obj.get(field)
        .and_then(|v| v.as_u64())
        .map(|v| v as usize)
        .ok_or_else(|| CheckpointError::MissingField(field.to_string()))
}

/// A serializable dump of one parameter matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixDump {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major data.
    pub data: Vec<f32>,
}

impl MatrixDump {
    /// Captures a matrix.
    pub fn from_matrix(m: &Matrix) -> Self {
        MatrixDump { rows: m.rows(), cols: m.cols(), data: m.as_slice().to_vec() }
    }

    /// Rebuilds the matrix, validating the declared shape against the
    /// stored data length.
    pub fn to_matrix(&self) -> Result<Matrix, CheckpointError> {
        if self.rows.checked_mul(self.cols) != Some(self.data.len()) {
            return Err(CheckpointError::ShapeMismatch {
                rows: self.rows,
                cols: self.cols,
                len: self.data.len(),
            });
        }
        Ok(Matrix::from_vec(self.rows, self.cols, self.data.clone()))
    }

    /// JSON value form.
    pub fn to_value(&self) -> Value {
        json!({ "rows": self.rows, "cols": self.cols, "data": self.data.clone() })
    }

    /// Parses the JSON value form.
    pub fn from_value(v: &Value) -> Result<Self, CheckpointError> {
        let rows = get_usize(v, "rows")?;
        let cols = get_usize(v, "cols")?;
        let data = v
            .get("data")
            .and_then(|d| d.as_array())
            .ok_or_else(|| CheckpointError::MissingField("data".into()))?
            .iter()
            .map(|x| x.as_f64().map(|f| f as f32))
            .collect::<Option<Vec<f32>>>()
            .ok_or_else(|| CheckpointError::MissingField("data".into()))?;
        Ok(MatrixDump { rows, cols, data })
    }
}

/// A serialized model: architecture tag, dimensions, and parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Architecture family, e.g. `"sequence-model"` or `"mlp"`.
    pub tag: String,
    /// Architecture dimensions, interpreted per tag.
    pub dims: Vec<usize>,
    /// Parameter matrices in optimizer order.
    pub params: Vec<MatrixDump>,
}

impl Checkpoint {
    /// JSON value form (the envelope payload).
    pub fn to_value(&self) -> Value {
        json!({
            "tag": self.tag.clone(),
            "dims": self.dims.clone(),
            "params": self.params.iter().map(|p| p.to_value()).collect::<Vec<_>>(),
        })
    }

    /// Parses the JSON value form, validating every matrix shape.
    pub fn from_value(v: &Value) -> Result<Self, CheckpointError> {
        let tag = v
            .get("tag")
            .and_then(|t| t.as_str())
            .ok_or_else(|| CheckpointError::MissingField("tag".into()))?
            .to_string();
        let dims = v
            .get("dims")
            .and_then(|d| d.as_array())
            .ok_or_else(|| CheckpointError::MissingField("dims".into()))?
            .iter()
            .map(|x| x.as_u64().map(|n| n as usize))
            .collect::<Option<Vec<usize>>>()
            .ok_or_else(|| CheckpointError::MissingField("dims".into()))?;
        let params = v
            .get("params")
            .and_then(|p| p.as_array())
            .ok_or_else(|| CheckpointError::MissingField("params".into()))?
            .iter()
            .map(MatrixDump::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        for p in &params {
            if p.rows.checked_mul(p.cols) != Some(p.data.len()) {
                return Err(CheckpointError::ShapeMismatch {
                    rows: p.rows,
                    cols: p.cols,
                    len: p.data.len(),
                });
            }
        }
        Ok(Checkpoint { tag, dims, params })
    }

    /// Serializes the checkpoint inside its integrity envelope.
    pub fn to_envelope_string(&self) -> String {
        seal_envelope(CHECKPOINT_FORMAT, self.to_value())
    }

    /// Parses and integrity-checks envelope text.
    pub fn from_envelope_str(text: &str) -> Result<Self, CheckpointError> {
        Checkpoint::from_value(&open_envelope(CHECKPOINT_FORMAT, text)?)
    }

    /// Atomically writes the checkpoint as checksummed JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, &self.to_envelope_string())
    }

    /// Reads a checkpoint written by [`Checkpoint::save`], verifying
    /// the envelope checksum and every matrix shape.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Checkpoint::from_envelope_str(&fs::read_to_string(path)?)
    }

    /// [`Checkpoint::load`] with retry/backoff on transient i/o errors.
    pub fn load_with_retry(
        path: &Path,
        attempts: u32,
        initial_backoff: Duration,
    ) -> Result<Self, CheckpointError> {
        load_with_retry(path, attempts, initial_backoff, Checkpoint::from_envelope_str)
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.params.iter().map(|p| p.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            tag: "test".to_string(),
            dims: vec![1, 2, 3],
            params: vec![MatrixDump { rows: 1, cols: 2, data: vec![0.5, -0.5] }],
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nfv_nn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn matrix_dump_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let dump = MatrixDump::from_matrix(&m);
        assert_eq!(dump.to_matrix().unwrap().as_slice(), m.as_slice());
    }

    #[test]
    fn matrix_dump_rejects_shape_mismatch() {
        let dump = MatrixDump { rows: 2, cols: 3, data: vec![1.0; 5] };
        match dump.to_matrix() {
            Err(CheckpointError::ShapeMismatch { rows: 2, cols: 3, len: 5 }) => {}
            other => panic!("expected ShapeMismatch, got {:?}", other),
        }
    }

    #[test]
    fn file_roundtrip() {
        let ckpt = sample();
        let path = temp_path("model.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        assert_eq!(loaded.parameter_count(), 2);
        // The atomic-save temp file must not linger.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_json_error_not_a_panic() {
        let text = sample().to_envelope_string();
        for cut in [1, text.len() / 3, text.len() - 1] {
            match Checkpoint::from_envelope_str(&text[..cut]) {
                Err(CheckpointError::Json { .. }) => {}
                other => panic!("cut at {}: expected Json error, got {:?}", cut, other),
            }
        }
    }

    #[test]
    fn flipped_checksum_byte_is_detected() {
        let text = sample().to_envelope_string();
        // Flip one hex digit of the recorded checksum.
        let pos = text.find("\"checksum\":\"").unwrap() + "\"checksum\":\"".len();
        let mut bytes = text.into_bytes();
        bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
        let tampered = String::from_utf8(bytes).unwrap();
        match Checkpoint::from_envelope_str(&tampered) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {:?}", other),
        }
    }

    #[test]
    fn corrupted_payload_value_is_detected() {
        let text = sample().to_envelope_string();
        // Change a data value inside the payload without touching the
        // recorded checksum.
        let tampered = text.replace("-0.5", "-0.7");
        assert_ne!(tampered, text);
        match Checkpoint::from_envelope_str(&tampered) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {:?}", other),
        }
    }

    #[test]
    fn wrong_format_and_future_version_are_typed() {
        let other = seal_envelope("some-other-artifact", json!({"x": 1}));
        match Checkpoint::from_envelope_str(&other) {
            Err(CheckpointError::BadFormat { .. }) => {}
            o => panic!("expected BadFormat, got {:?}", o),
        }
        let future = sample().to_envelope_string().replace("\"version\":1", "\"version\":99");
        match Checkpoint::from_envelope_str(&future) {
            Err(CheckpointError::UnsupportedVersion { found: 99, .. }) => {}
            o => panic!("expected UnsupportedVersion, got {:?}", o),
        }
    }

    #[test]
    fn shape_mismatch_inside_file_is_rejected() {
        let mut ckpt = sample();
        ckpt.params[0].rows = 7; // now 7*2 != data.len()
        let text = seal_envelope(CHECKPOINT_FORMAT, ckpt.to_value());
        match Checkpoint::from_envelope_str(&text) {
            Err(CheckpointError::ShapeMismatch { .. }) => {}
            other => panic!("expected ShapeMismatch, got {:?}", other),
        }
    }

    #[test]
    fn save_is_atomic_over_existing_file() {
        let path = temp_path("overwrite.json");
        sample().save(&path).unwrap();
        let mut bigger = sample();
        bigger.dims = vec![9, 9, 9];
        bigger.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap().dims, vec![9, 9, 9]);
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_with_retry_eventually_reads_and_reports_missing() {
        let path = temp_path("retry.json");
        sample().save(&path).unwrap();
        let loaded = Checkpoint::load_with_retry(&path, 3, Duration::from_millis(1)).unwrap();
        assert_eq!(loaded, sample());
        std::fs::remove_file(&path).ok();
        match Checkpoint::load_with_retry(&path, 2, Duration::from_millis(1)) {
            Err(CheckpointError::Io(_)) => {}
            other => panic!("expected Io error, got {:?}", other),
        }
    }
}
