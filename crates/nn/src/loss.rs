//! Loss functions: softmax cross-entropy (the paper trains the LSTM with
//! categorical cross-entropy) and mean-squared error (autoencoder).

use nfv_tensor::Matrix;

/// Softmax + categorical cross-entropy, fused for numerical stability.
///
/// Given raw logits (`B x V`) and one target class per row, returns the
/// mean loss and `dL/dlogits` (already divided by the batch size).
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    let mut dlogits = Matrix::zeros(0, 0);
    let loss = softmax_cross_entropy_into(logits, targets, &mut dlogits);
    (loss, dlogits)
}

/// Allocation-free [`softmax_cross_entropy`]: writes `dL/dlogits` into
/// the reusable `dlogits` buffer and returns the mean loss.
pub fn softmax_cross_entropy_into(logits: &Matrix, targets: &[usize], dlogits: &mut Matrix) -> f32 {
    let sum = softmax_cross_entropy_scaled_into(logits, targets, dlogits, logits.rows());
    sum / logits.rows() as f32
}

/// Shard-aware softmax cross-entropy: normalizes the gradient by
/// `total_rows` (the size of the *whole* mini-batch, not just the rows in
/// `logits`) and returns the *unnormalized* loss sum over the shard.
///
/// Summing the returned values over a batch's shards and dividing once by
/// `total_rows` reproduces the mean batch loss, and the per-shard
/// gradients add up to the batched mean gradient — which is what lets the
/// deterministic data-parallel trainer split a batch without changing its
/// scaling. With `total_rows == logits.rows()` this is bit-identical to
/// the serial [`softmax_cross_entropy_into`] path.
pub fn softmax_cross_entropy_scaled_into(
    logits: &Matrix,
    targets: &[usize],
    dlogits: &mut Matrix,
    total_rows: usize,
) -> f32 {
    assert_eq!(logits.rows(), targets.len(), "softmax_cross_entropy: batch mismatch");
    assert!(total_rows >= logits.rows(), "softmax_cross_entropy: total smaller than shard");
    dlogits.copy_from(logits);
    dlogits.softmax_rows_inplace();

    let mut loss = 0.0f32;
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols(), "target class {} out of range ({})", t, logits.cols());
        loss -= dlogits.get(r, t).max(1e-12).ln();
    }

    // dL/dlogits = (softmax - onehot) / total.
    for (r, &t) in targets.iter().enumerate() {
        let v = dlogits.get(r, t);
        dlogits.set(r, t, v - 1.0);
    }
    dlogits.scale(1.0 / total_rows as f32);
    loss
}

/// Row-wise predicted class probabilities (softmax of logits).
pub fn softmax_probs(logits: &Matrix) -> Matrix {
    let mut probs = logits.clone();
    probs.softmax_rows_inplace();
    probs
}

/// Mean-squared error `mean((pred - target)^2)` and its gradient
/// w.r.t. `pred` (divided by the element count).
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    let mut grad = Matrix::zeros(0, 0);
    let loss = mse_into(pred, target, &mut grad);
    (loss, grad)
}

/// Allocation-free [`mse`]: writes the gradient into the reusable `grad`
/// buffer and returns the mean loss.
pub fn mse_into(pred: &Matrix, target: &Matrix, grad: &mut Matrix) -> f32 {
    let n = (pred.rows() * pred.cols()) as f32;
    mse_scaled_into(pred, target, grad, pred.rows()) / n
}

/// Shard-aware MSE: normalizes the gradient by `total_rows * cols`
/// elements (the whole mini-batch) and returns the *unnormalized* sum of
/// squared errors over the shard. See
/// [`softmax_cross_entropy_scaled_into`] for the sharding contract; with
/// `total_rows == pred.rows()` this matches the serial [`mse_into`] path
/// bit for bit.
pub fn mse_scaled_into(
    pred: &Matrix,
    target: &Matrix,
    grad: &mut Matrix,
    total_rows: usize,
) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "mse: shape mismatch");
    assert!(total_rows >= pred.rows(), "mse: total smaller than shard");
    let n = (total_rows * pred.cols()) as f32;
    grad.copy_from(pred);
    grad.sub_assign(target);
    let loss = grad.as_slice().iter().map(|d| d * d).sum::<f32>();
    grad.scale(2.0 / n);
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_v() {
        let logits = Matrix::zeros(2, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let logits = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.0, 0.1, -0.2]);
        let (_, d) = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = d.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {} sums to {}", r, s);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_numerical() {
        let mut logits = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.0, 0.1, -0.2]);
        let targets = [2usize, 0];
        let (_, analytic) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let orig = logits.as_slice()[idx];
            logits.as_mut_slice()[idx] = orig + eps;
            let (plus, _) = softmax_cross_entropy(&logits, &targets);
            logits.as_mut_slice()[idx] = orig - eps;
            let (minus, _) = softmax_cross_entropy(&logits, &targets);
            logits.as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (analytic.as_slice()[idx] - numeric).abs() < 1e-3,
                "idx {}: analytic {} vs numeric {}",
                idx,
                analytic.as_slice()[idx],
                numeric
            );
        }
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits.set(0, 1, 50.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-5);
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4)/2
        assert_eq!(grad.as_slice(), &[1.0, 2.0]); // 2*(pred-target)/2
    }

    #[test]
    fn mse_gradient_matches_numerical() {
        let mut pred = Matrix::from_vec(2, 2, vec![0.3, -0.7, 1.2, 0.0]);
        let target = Matrix::from_vec(2, 2, vec![0.0, 0.5, 1.0, -1.0]);
        let (_, analytic) = mse(&pred, &target);
        let eps = 1e-3f32;
        for idx in 0..4 {
            let orig = pred.as_slice()[idx];
            pred.as_mut_slice()[idx] = orig + eps;
            let (plus, _) = mse(&pred, &target);
            pred.as_mut_slice()[idx] = orig - eps;
            let (minus, _) = mse(&pred, &target);
            pred.as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((analytic.as_slice()[idx] - numeric).abs() < 1e-3);
        }
    }
}
