//! Pointwise activation functions and their derivatives.

use nfv_tensor::Matrix;

/// Supported pointwise activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => sigmoid(x),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed in terms of the *activated output* `y = f(x)`.
    ///
    /// All four supported activations admit this form, which lets the
    /// backward passes avoid caching pre-activation values.
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Applies the activation elementwise in place.
    pub fn apply_inplace(self, m: &mut Matrix) {
        if self == Activation::Identity {
            return;
        }
        m.map_inplace(|x| self.apply(x));
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(-1000.0).is_finite() && sigmoid(1000.0).is_finite());
    }

    #[test]
    fn derivatives_match_numerical() {
        let eps = 1e-3f32;
        for &act in &[Activation::Identity, Activation::Sigmoid, Activation::Tanh, Activation::Relu]
        {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
                let y = act.apply(x);
                let analytic = act.derivative_from_output(y);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-2,
                    "{:?} at {}: analytic {} vs numeric {}",
                    act,
                    x,
                    analytic,
                    numeric
                );
            }
        }
    }

    #[test]
    fn apply_inplace_matches_scalar() {
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        Activation::Relu.apply_inplace(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0]);
    }
}
