//! A from-scratch neural-network library with manual backpropagation.
//!
//! The paper's anomaly detector is a small stack — embedding, two LSTM
//! layers, one dense softmax head — trained with categorical cross-entropy
//! (§5.1 of Li et al., IMC '18). No mature pure-Rust deep-learning library
//! is assumed, so this crate implements exactly what the reproduction
//! needs and nothing more:
//!
//! * [`dense::Dense`] — fully-connected layer with optional activation;
//! * [`embedding::Embedding`] — lookup table for template ids;
//! * [`lstm::LstmLayer`] — batched LSTM with full back-propagation
//!   through time;
//! * [`gru::GruLayer`] / [`gru::GruSequenceModel`] — the GRU member of
//!   the detector zoo: same container contract as the LSTM stack with
//!   ~25% fewer weights per layer;
//! * [`loss`] — softmax cross-entropy and mean-squared error;
//! * [`optimizer`] — SGD, momentum and Adam;
//! * [`trainer`] — the shared training loop ([`trainer::Trainer`]):
//!   batching, shuffling, clipping, frozen-parameter masking, LR decay
//!   and loss traces over a persistent [`trainer::GradientSet`]; plus a
//!   deterministic data-parallel path ([`trainer::ShardedBatchLoss`] /
//!   [`trainer::ShardPool`]) that splits batches into fixed, index-ordered
//!   gradient shards and reduces them in shard order, so results are
//!   bit-identical for any worker count;
//! * [`model::SequenceModel`] — the paper's next-template network, with
//!   layer freezing for transfer learning;
//! * [`model::Mlp`] — a plain multi-layer perceptron used to build the
//!   autoencoder baseline;
//! * [`checkpoint`] — JSON save/load of parameter sets.
//!
//! Hot paths follow the tensor crate's in-place naming convention
//! (`*_into` overwrites an out-parameter, `*_acc` accumulates into one);
//! the original allocating methods remain as thin wrappers. Every
//! differentiable component is covered by a numerical gradient check in
//! its unit tests.

pub mod activation;
pub mod checkpoint;
pub mod dense;
pub mod embedding;
pub mod gru;
pub mod loss;
pub mod lstm;
pub mod model;
pub mod optimizer;
pub mod trainer;

pub use activation::Activation;
pub use checkpoint::{Checkpoint, CheckpointError};
pub use dense::Dense;
pub use embedding::Embedding;
pub use gru::{GruLayer, GruModelConfig, GruScratch, GruSequenceModel};
pub use lstm::LstmLayer;
pub use model::{
    Mlp, MlpScratch, MseRows, SeqScratch, SeqView, SequenceModel, SequenceModelConfig,
};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use trainer::{
    BatchLoss, GradientSet, ShardPool, ShardedBatchLoss, TrainError, Trainer, TrainerConfig,
    DEFAULT_GRAD_CLIP, DEFAULT_SHARD_ROWS, MAX_SHARDS_PER_BATCH, PAR_MIN_BATCH_ROWS,
};

/// Anything that exposes its trainable parameters and matching gradient
/// accumulators, in a stable order, so an optimizer can update them.
pub trait Trainable {
    /// Immutable views of all parameters, in a stable order.
    fn params(&self) -> Vec<&nfv_tensor::Matrix>;
    /// Mutable views of all parameters, in the same order as [`Self::params`].
    fn params_mut(&mut self) -> Vec<&mut nfv_tensor::Matrix>;
    /// Shapes of all parameters, in optimizer order.
    fn param_shapes(&self) -> Vec<(usize, usize)> {
        self.params().iter().map(|p| p.shape()).collect()
    }
}
