//! Embedding lookup table for categorical inputs (syslog template ids).

use crate::Trainable;
use nfv_tensor::{uniform_in, Matrix};
use rand::Rng;

/// A `vocab x dim` lookup table mapping class ids to dense vectors.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Matrix,
}

/// Gradient of the embedding table, sparse in rows but stored densely —
/// vocabularies in this workspace are small (tens to a few hundred
/// templates), so a dense accumulator is simpler and fast enough.
#[derive(Debug, Clone)]
pub struct EmbeddingGrads {
    /// Dense gradient with the same shape as the table.
    pub dtable: Matrix,
}

impl Embedding {
    /// New table initialized uniformly in `[-0.1, 0.1)`.
    pub fn new(vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        assert!(vocab > 0 && dim > 0, "Embedding: empty shape");
        Embedding { table: uniform_in(vocab, dim, -0.1, 0.1, rng) }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Looks up a batch of ids, producing a `ids.len() x dim` matrix.
    ///
    /// # Panics
    /// Panics when any id is out of vocabulary; callers are expected to
    /// map unseen templates to a reserved id first.
    pub fn forward(&self, ids: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(ids.len(), self.dim());
        self.forward_into(ids, &mut out);
        out
    }

    /// Allocation-free lookup writing into the leading `dim` columns of
    /// each row of `out`. `out` may be wider than the embedding (the
    /// sequence model appends a gap-feature column); extra columns are
    /// left untouched.
    pub fn forward_into(&self, ids: &[usize], out: &mut Matrix) {
        assert_eq!(out.rows(), ids.len(), "Embedding::forward: row mismatch");
        assert!(out.cols() >= self.dim(), "Embedding::forward: output too narrow");
        let d = self.dim();
        for (r, &id) in ids.iter().enumerate() {
            assert!(
                id < self.vocab(),
                "Embedding::forward: id {} out of vocabulary ({})",
                id,
                self.vocab()
            );
            out.row_mut(r)[..d].copy_from_slice(self.table.row(id));
        }
    }

    /// Accumulates `dL/d(table)` given the upstream gradient for each
    /// looked-up row.
    pub fn backward(&self, ids: &[usize], d_out: &Matrix) -> EmbeddingGrads {
        assert_eq!(d_out.rows(), ids.len(), "Embedding::backward: row mismatch");
        assert_eq!(d_out.cols(), self.dim(), "Embedding::backward: width mismatch");
        let mut dtable = Matrix::zeros(self.vocab(), self.dim());
        for (r, &id) in ids.iter().enumerate() {
            let src = d_out.row(r);
            let dst = dtable.row_mut(id);
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
        EmbeddingGrads { dtable }
    }
}

impl Trainable for Embedding {
    fn params(&self) -> Vec<&Matrix> {
        vec![&self.table]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn forward_returns_table_rows() {
        let mut rng = SmallRng::seed_from_u64(1);
        let emb = Embedding::new(5, 3, &mut rng);
        let out = emb.forward(&[2, 0, 2]);
        assert_eq!(out.row(0), emb.params()[0].row(2));
        assert_eq!(out.row(1), emb.params()[0].row(0));
        assert_eq!(out.row(2), emb.params()[0].row(2));
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn forward_rejects_oov() {
        let mut rng = SmallRng::seed_from_u64(1);
        let emb = Embedding::new(5, 3, &mut rng);
        let _ = emb.forward(&[5]);
    }

    #[test]
    fn backward_accumulates_repeated_ids() {
        let mut rng = SmallRng::seed_from_u64(2);
        let emb = Embedding::new(4, 2, &mut rng);
        let d_out = Matrix::from_vec(3, 2, vec![1.0, 2.0, 10.0, 20.0, 100.0, 200.0]);
        let grads = emb.backward(&[1, 3, 1], &d_out);
        assert_eq!(grads.dtable.row(1), &[101.0, 202.0]);
        assert_eq!(grads.dtable.row(3), &[10.0, 20.0]);
        assert_eq!(grads.dtable.row(0), &[0.0, 0.0]);
    }
}
