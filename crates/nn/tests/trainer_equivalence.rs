//! Refactor-equivalence suite for the shared [`Trainer`] loop.
//!
//! The loss trajectories below were captured by running the pre-refactor
//! allocating implementation (per-step gradient clones, per-call matrix
//! allocations) on fixed seeds. The refactored in-place kernels preserve
//! per-element summation order, so the new code must reproduce every
//! step loss bit-for-bit — both through the legacy `train_step` wrappers
//! and through the new `Trainer` path.

use nfv_nn::model::SeqBatch;
use nfv_nn::{
    Activation, Adam, BatchLoss, GradientSet, Mlp, MseRows, SeqView, SequenceModel,
    SequenceModelConfig, Sgd, TrainError, Trainable, Trainer, TrainerConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Pre-refactor `SequenceModel::train_step` losses: model seed 42, data
/// seed 1234, 16 windows of length 6, vocab 12, Adam 5e-3, 25 full-batch
/// steps.
const SEQ_TRAJ: [f32; 25] = [
    2.4849496, 2.4691317, 2.45332, 2.436119, 2.4166152, 2.3940396, 2.3675995, 2.3364651, 2.299871,
    2.2573574, 2.209166, 2.1568036, 2.1035602, 2.0539556, 2.0118346, 1.9784019, 1.9510148,
    1.9252096, 1.8986655, 1.8720356, 1.847379, 1.8270649, 1.8118224, 1.8003098, 1.7917213,
];

/// Pre-refactor `Mlp::train_step_mse` losses: seed 77, widths
/// [10, 6, 3, 6, 10], fixed 12x10 input autoencoded, Adam 3e-3, 25 steps.
const MLP_TRAJ: [f32; 25] = [
    0.3251093, 0.30827177, 0.29235235, 0.27744457, 0.26362547, 0.25093812, 0.23938751, 0.22894134,
    0.21953328, 0.2110682, 0.20343404, 0.19651249, 0.1901848, 0.18433513, 0.17885454, 0.17364398,
    0.16861872, 0.16371116, 0.15887389, 0.15408033, 0.14932378, 0.1446142, 0.13997452, 0.1354349,
    0.13102815,
];

/// Bit-exact comparison under default features; when the `fast-gemm`
/// GEMM kernel is compiled in (FMA + split-k accumulation, deliberately
/// not bit-identical) the comparison relaxes to a tight tolerance.
fn assert_traj_exact(got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "trajectory length mismatch");
    let exact = nfv_tensor::gemm::default_backend_bit_exact();
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        if exact {
            assert_eq!(g, w, "step {} loss diverged: got {}, captured {}", i, g, w);
        } else {
            assert!(
                (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                "step {} loss diverged beyond fast-gemm tolerance: got {}, captured {}",
                i,
                g,
                w
            );
        }
    }
}

struct SeqFixture {
    model: SequenceModel,
    ids: Vec<Vec<usize>>,
    gaps: Vec<Vec<f32>>,
    targets: Vec<usize>,
}

fn seq_fixture() -> SeqFixture {
    let cfg = SequenceModelConfig {
        vocab: 12,
        embed_dim: 8,
        hidden: 16,
        lstm_layers: 2,
        use_gap_feature: true,
    };
    let mut rng = SmallRng::seed_from_u64(42);
    let model = SequenceModel::new(cfg, &mut rng);
    let mut data_rng = SmallRng::seed_from_u64(1234);
    let n = 16usize;
    let window = 6usize;
    let ids: Vec<Vec<usize>> =
        (0..n).map(|_| (0..window).map(|_| data_rng.gen_range(0..12)).collect()).collect();
    let gaps: Vec<Vec<f32>> =
        (0..n).map(|_| (0..window).map(|_| data_rng.gen::<f32>()).collect()).collect();
    let targets: Vec<usize> = (0..n).map(|_| data_rng.gen_range(0..12)).collect();
    SeqFixture { model, ids, gaps, targets }
}

#[test]
fn train_step_wrapper_reproduces_captured_trajectory() {
    let SeqFixture { mut model, ids, gaps, targets } = seq_fixture();
    let batch = SeqBatch { ids, gaps };
    let mut opt = Adam::new(5e-3, &model.param_shapes());
    let losses: Vec<f32> = (0..25).map(|_| model.train_step(&batch, &targets, &mut opt)).collect();
    assert_traj_exact(&losses, &SEQ_TRAJ);
}

#[test]
fn trainer_reproduces_captured_sequence_trajectory() {
    let SeqFixture { mut model, ids, gaps, targets } = seq_fixture();
    let view = SeqView { ids: &ids, gaps: &gaps, targets: &targets };
    let shapes = model.param_shapes();
    // 25 epochs x one full batch per epoch = the 25 captured steps; with
    // shuffling off the rng is never consulted.
    let cfg = TrainerConfig { epochs: 25, batch_size: 16, shuffle: false, ..Default::default() };
    let mut trainer = Trainer::new(cfg, Adam::new(5e-3, &shapes), &shapes);
    let mut rng = SmallRng::seed_from_u64(0);
    trainer.fit(&mut model, &view, 16, &mut rng).unwrap();
    assert_traj_exact(trainer.step_losses(), &SEQ_TRAJ);
}

#[test]
fn sharded_trainer_with_single_shard_reproduces_captured_trajectory() {
    // The 16-window full batch fits in one default-width shard, and the
    // sharded path's single-shard case is required to take the exact
    // serial code path — so the data-parallel trainer must reproduce the
    // captured pre-refactor trajectory bit for bit at any thread count.
    for threads in [1, 4] {
        let SeqFixture { mut model, ids, gaps, targets } = seq_fixture();
        let view = SeqView { ids: &ids, gaps: &gaps, targets: &targets };
        let shapes = model.param_shapes();
        let cfg = TrainerConfig {
            epochs: 25,
            batch_size: 16,
            shuffle: false,
            threads,
            ..Default::default()
        };
        let mut trainer = Trainer::new(cfg, Adam::new(5e-3, &shapes), &shapes);
        let mut rng = SmallRng::seed_from_u64(0);
        trainer.fit_sharded(&mut model, &view, 16, &mut rng).unwrap();
        assert_traj_exact(trainer.step_losses(), &SEQ_TRAJ);
    }
}

#[test]
fn trainer_reproduces_captured_mlp_trajectory() {
    let mut rng = SmallRng::seed_from_u64(77);
    let mut mlp = Mlp::new(&[10, 6, 3, 6, 10], Activation::Tanh, Activation::Identity, &mut rng);
    let rows: Vec<Vec<f32>> =
        (0..12).map(|r| (0..10).map(|c| ((r * 13 + c * 7) % 17) as f32 * 0.05).collect()).collect();
    let data = MseRows { x: &rows, target: &rows };
    let shapes = Trainable::param_shapes(&mlp);
    let cfg = TrainerConfig { epochs: 25, batch_size: 12, shuffle: false, ..Default::default() };
    let mut trainer = Trainer::new(cfg, Adam::new(3e-3, &shapes), &shapes);
    let mut seed = SmallRng::seed_from_u64(0);
    trainer.fit(&mut mlp, &data, rows.len(), &mut seed).unwrap();
    assert_traj_exact(trainer.step_losses(), &MLP_TRAJ);
}

#[test]
fn exploding_lr_stops_training_with_typed_error() {
    let mut rng = SmallRng::seed_from_u64(5);
    let mut mlp = Mlp::new(&[1, 1], Activation::Identity, Activation::Identity, &mut rng);
    let rows = vec![vec![2.0f32]];
    let data = MseRows { x: &rows, target: &rows };
    let shapes = Trainable::param_shapes(&mlp);
    // An absurd learning rate overflows the parameters after the first
    // step; the second batch loss is non-finite and must abort the run
    // before the optimizer consumes the bad gradients.
    let cfg = TrainerConfig { epochs: 10, batch_size: 1, shuffle: false, ..Default::default() };
    let mut trainer = Trainer::new(cfg, Sgd::new(1e19, 0.0, &shapes), &shapes);
    let mut seed = SmallRng::seed_from_u64(0);
    let err = trainer.fit(&mut mlp, &data, 1, &mut seed).unwrap_err();
    let TrainError::NonFiniteLoss { step, loss } = err else {
        panic!("expected NonFiniteLoss, got {err:?}");
    };
    assert!(!loss.is_finite(), "guard fired on a finite loss {}", loss);
    assert!(step >= 1, "first step should have been finite");
    // Only losses of completed steps are traced.
    assert_eq!(trainer.step_losses().len(), step);
    assert!(trainer.step_losses().iter().all(|l| l.is_finite()));
}

#[test]
fn nan_weight_behind_zero_activation_trips_non_finite_guard() {
    // Regression for the old matmul zero-skip fast path: a NaN in the
    // rhs (a poisoned weight) whose paired lhs element is exactly 0.0 (a
    // zeroed activation) used to be skipped — `0.0 * NaN` never entered
    // the accumulator — so the forward pass stayed finite and the
    // `NonFiniteLoss` guard never fired. The packed GEMM backend has no
    // such skip: the NaN must reach the logits and abort training on the
    // very first step.
    let mut rng = SmallRng::seed_from_u64(3);
    let mut mlp = Mlp::new(&[2, 1], Activation::Identity, Activation::Identity, &mut rng);
    // Poison the weight row that only ever multiplies the zero input.
    Trainable::params_mut(&mut mlp)[0].set(0, 0, f32::NAN);
    let rows = vec![vec![0.0f32, 1.0]];
    let targets = vec![vec![0.5f32]];
    let data = MseRows { x: &rows, target: &targets };
    let shapes = Trainable::param_shapes(&mlp);
    let cfg = TrainerConfig { epochs: 3, batch_size: 1, shuffle: false, ..Default::default() };
    let mut trainer = Trainer::new(cfg, Sgd::new(1e-2, 0.0, &shapes), &shapes);
    let mut seed = SmallRng::seed_from_u64(0);
    let err = trainer.fit(&mut mlp, &data, 1, &mut seed).unwrap_err();
    let TrainError::NonFiniteLoss { step, loss } = err else {
        panic!("expected NonFiniteLoss from the poisoned weight, got {err:?}");
    };
    assert_eq!(step, 0, "the NaN must surface on the first forward pass");
    assert!(loss.is_nan(), "swallowed NaN: loss was {}", loss);
}

#[test]
fn sequence_model_batch_gradients_match_finite_differences() {
    let cfg = SequenceModelConfig {
        vocab: 6,
        embed_dim: 4,
        hidden: 5,
        lstm_layers: 2,
        use_gap_feature: true,
    };
    let mut rng = SmallRng::seed_from_u64(9);
    let mut model = SequenceModel::new(cfg, &mut rng);
    let mut data_rng = SmallRng::seed_from_u64(31);
    let n = 3usize;
    let window = 4usize;
    let ids: Vec<Vec<usize>> =
        (0..n).map(|_| (0..window).map(|_| data_rng.gen_range(0..6)).collect()).collect();
    let gaps: Vec<Vec<f32>> =
        (0..n).map(|_| (0..window).map(|_| data_rng.gen::<f32>()).collect()).collect();
    let targets: Vec<usize> = (0..n).map(|_| data_rng.gen_range(0..6)).collect();
    let indices: Vec<usize> = (0..n).collect();

    let mut grads = GradientSet::new(&model.param_shapes());
    let view = SeqView { ids: &ids, gaps: &gaps, targets: &targets };
    model.batch_gradients(&view, &indices, &mut grads);

    let batch = SeqBatch { ids: ids.clone(), gaps: gaps.clone() };
    let eps = 1e-2f32;
    let n_params = model.params().len();
    for p in 0..n_params {
        let len = model.params()[p].as_slice().len();
        // Probe a spread of elements per matrix; a full sweep over every
        // weight would dominate the test suite's runtime.
        let stride = (len / 5).max(1);
        for idx in (0..len).step_by(stride) {
            let orig = model.params()[p].as_slice()[idx];
            model.params_mut()[p].as_mut_slice()[idx] = orig + eps;
            let plus = model.evaluate_loss(&batch, &targets);
            model.params_mut()[p].as_mut_slice()[idx] = orig - eps;
            let minus = model.evaluate_loss(&batch, &targets);
            model.params_mut()[p].as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grads.get(p).as_slice()[idx];
            assert!(
                (analytic - numeric).abs() < 3e-3,
                "param {} elem {}: analytic {} vs numeric {}",
                p,
                idx,
                analytic,
                numeric
            );
        }
    }
}
