//! Determinism and fault-containment suite for the data-parallel
//! trainer path.
//!
//! The sharded path's contract is that the thread count is pure
//! scheduling: the shard layout and the reduction order are functions of
//! the batch's index order and `shard_rows` alone, so every worker count
//! must produce bit-identical step losses and parameters. These tests
//! pin that contract for both model families and verify that a panicking
//! worker surfaces as a typed [`TrainError`] instead of poisoning the
//! pool.

use nfv_nn::{
    Activation, Adam, BatchLoss, GradientSet, Mlp, MseRows, SeqView, SequenceModel,
    SequenceModelConfig, Sgd, ShardedBatchLoss, TrainError, Trainable, Trainer, TrainerConfig,
};
use nfv_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct SeqData {
    ids: Vec<Vec<usize>>,
    gaps: Vec<Vec<f32>>,
    targets: Vec<usize>,
}

fn seq_data(n: usize, window: usize, vocab: usize, seed: u64) -> SeqData {
    let mut rng = SmallRng::seed_from_u64(seed);
    let ids = (0..n).map(|_| (0..window).map(|_| rng.gen_range(0..vocab)).collect()).collect();
    let gaps = (0..n).map(|_| (0..window).map(|_| rng.gen::<f32>()).collect()).collect();
    let targets = (0..n).map(|_| rng.gen_range(0..vocab)).collect();
    SeqData { ids, gaps, targets }
}

fn seq_model(seed: u64) -> SequenceModel {
    let cfg = SequenceModelConfig {
        vocab: 10,
        embed_dim: 6,
        hidden: 12,
        lstm_layers: 2,
        use_gap_feature: true,
    };
    SequenceModel::new(cfg, &mut SmallRng::seed_from_u64(seed))
}

/// Runs one sharded fit and returns (step losses, final parameters).
fn run_seq_fit(threads: usize, data: &SeqData) -> (Vec<f32>, Vec<Vec<f32>>) {
    let mut model = seq_model(42);
    let shapes = model.param_shapes();
    let cfg = TrainerConfig {
        epochs: 3,
        batch_size: 20,
        shard_rows: 8,
        threads,
        ..TrainerConfig::default()
    };
    let mut trainer = Trainer::new(cfg, Adam::new(5e-3, &shapes), &shapes);
    let view = SeqView { ids: &data.ids, gaps: &data.gaps, targets: &data.targets };
    let mut rng = SmallRng::seed_from_u64(9);
    trainer.fit_sharded(&mut model, &view, data.ids.len(), &mut rng).unwrap();
    let params = model.params().iter().map(|p| p.as_slice().to_vec()).collect();
    (trainer.step_losses().to_vec(), params)
}

#[test]
fn sequence_fit_is_bit_identical_for_any_thread_count() {
    // 40 windows at batch 20 / shard 8 -> 3 shards per batch, so the
    // multi-shard reduction path is exercised at every thread count.
    let data = seq_data(40, 5, 10, 1234);
    let (base_losses, base_params) = run_seq_fit(1, &data);
    assert_eq!(base_losses.len(), 3 * 2, "3 epochs x 2 batches");
    for threads in [2, 4, 8] {
        let (losses, params) = run_seq_fit(threads, &data);
        assert_eq!(losses, base_losses, "losses diverged at {threads} threads");
        assert_eq!(params, base_params, "parameters diverged at {threads} threads");
    }
}

#[test]
fn mlp_fit_is_bit_identical_for_any_thread_count() {
    let rows: Vec<Vec<f32>> =
        (0..30).map(|r| (0..6).map(|c| ((r * 11 + c * 5) % 13) as f32 * 0.07).collect()).collect();
    let run = |threads: usize| -> (Vec<f32>, Vec<Vec<f32>>) {
        let mut mlp = Mlp::new(
            &[6, 4, 6],
            Activation::Tanh,
            Activation::Identity,
            &mut SmallRng::seed_from_u64(7),
        );
        let shapes = Trainable::param_shapes(&mlp);
        let cfg = TrainerConfig {
            epochs: 4,
            batch_size: 10,
            shard_rows: 4,
            threads,
            ..TrainerConfig::default()
        };
        let mut trainer = Trainer::new(cfg, Adam::new(3e-3, &shapes), &shapes);
        let data = MseRows { x: &rows, target: &rows };
        let mut rng = SmallRng::seed_from_u64(5);
        trainer.fit_sharded(&mut mlp, &data, rows.len(), &mut rng).unwrap();
        let params = mlp.params().iter().map(|p| p.as_slice().to_vec()).collect();
        (trainer.step_losses().to_vec(), params)
    };
    let (base_losses, base_params) = run(1);
    for threads in [2, 4] {
        let (losses, params) = run(threads);
        assert_eq!(losses, base_losses, "losses diverged at {threads} threads");
        assert_eq!(params, base_params, "parameters diverged at {threads} threads");
    }
}

/// y = w * x toward y = 2x, with an optional poisoned sample index whose
/// shard computation panics.
struct Panicky {
    w: Matrix,
    panic_on: Option<usize>,
}

impl Trainable for Panicky {
    fn params(&self) -> Vec<&Matrix> {
        vec![&self.w]
    }
    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.w]
    }
}

impl BatchLoss<[f32]> for Panicky {
    fn batch_gradients(&mut self, data: &[f32], indices: &[usize], grads: &mut GradientSet) -> f32 {
        let mut worker = ();
        let sum = ShardedBatchLoss::shard_gradients(
            self,
            data,
            indices,
            indices.len(),
            &mut worker,
            grads,
        );
        sum / indices.len() as f32
    }
}

impl ShardedBatchLoss<[f32]> for Panicky {
    type Worker = ();

    fn shard_gradients(
        &self,
        data: &[f32],
        indices: &[usize],
        total: usize,
        _worker: &mut (),
        grads: &mut GradientSet,
    ) -> f32 {
        let w = self.w.get(0, 0);
        let mut sum = 0.0;
        let mut g = 0.0;
        for &i in indices {
            if Some(i) == self.panic_on {
                panic!("poisoned sample {i}");
            }
            let x = data[i];
            let err = w * x - 2.0 * x;
            sum += err * err;
            g += 2.0 * err * x;
        }
        let slot = grads.get_mut(0);
        slot.set(0, 0, slot.get(0, 0) + g / total as f32);
        sum
    }
}

#[test]
fn large_batches_cross_the_serial_cutoff_and_stay_bit_identical() {
    // PAR_MIN_BATCH_ROWS gates worker spawning: batches below it run on
    // the calling thread, batches at or above it fan out. Both sides of
    // the gate must produce the same bits, and the spawn path itself
    // must stay covered now that the small fixtures above run inline.
    let n = nfv_nn::PAR_MIN_BATCH_ROWS * 2;
    let data: Vec<f32> = (0..n).map(|i| (i % 97) as f32 * 0.01 + 0.1).collect();
    let run = |threads: usize| -> (Vec<f32>, f32) {
        let mut model = Panicky { w: Matrix::zeros(1, 1), panic_on: None };
        let cfg = TrainerConfig {
            epochs: 2,
            batch_size: nfv_nn::PAR_MIN_BATCH_ROWS,
            shard_rows: 16,
            threads,
            shuffle: false,
            ..TrainerConfig::default()
        };
        let mut trainer = Trainer::new(cfg, Sgd::new(0.02, 0.0, &[(1, 1)]), &[(1, 1)]);
        let mut rng = SmallRng::seed_from_u64(3);
        trainer.fit_sharded(&mut model, data.as_slice(), n, &mut rng).unwrap();
        (trainer.step_losses().to_vec(), model.w.get(0, 0))
    };
    let (base_losses, base_w) = run(1);
    assert_eq!(base_losses.len(), 2 * 2, "2 epochs x 2 full batches");
    for threads in [2, 4] {
        let (losses, w) = run(threads);
        assert_eq!(losses, base_losses, "losses diverged at {threads} threads");
        assert_eq!(w.to_bits(), base_w.to_bits(), "weight diverged at {threads} threads");
    }
}

#[test]
fn auto_shard_rows_resolves_from_batch_size_alone() {
    // shard_rows == 0 is the auto sentinel: the resolved width depends
    // only on batch_size (never threads), and at the default batch size
    // it reproduces the historical fixed width so recorded trajectories
    // are unchanged.
    let auto = |batch_size: usize, threads: usize| {
        TrainerConfig { batch_size, shard_rows: 0, threads, ..TrainerConfig::default() }
            .resolved_shard_rows()
    };
    assert_eq!(auto(64, 1), nfv_nn::DEFAULT_SHARD_ROWS);
    assert_eq!(auto(64, 8), nfv_nn::DEFAULT_SHARD_ROWS, "threads must not affect the layout");
    assert_eq!(auto(1, 1), nfv_nn::DEFAULT_SHARD_ROWS, "tiny batches keep the default width");
    // Large batches scale the width so shard count stays bounded.
    assert_eq!(auto(4096, 4), 256);
    // Explicit widths are always honored verbatim.
    let explicit = TrainerConfig { batch_size: 4096, shard_rows: 8, ..TrainerConfig::default() };
    assert_eq!(explicit.resolved_shard_rows(), 8);
}

#[test]
fn worker_panic_surfaces_as_typed_error_and_pool_stays_usable() {
    // Keep the default hook from spamming the test log with the expected
    // panic's backtrace; the payload still reaches the typed error.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let data: Vec<f32> = (1..=8).map(|i| i as f32 * 0.25).collect();
    let mut model = Panicky { w: Matrix::zeros(1, 1), panic_on: Some(5) };
    let cfg = TrainerConfig {
        epochs: 2,
        batch_size: 8,
        shard_rows: 2,
        threads: 3,
        shuffle: false,
        ..TrainerConfig::default()
    };
    let mut trainer = Trainer::new(cfg, Sgd::new(0.05, 0.0, &[(1, 1)]), &[(1, 1)]);
    let mut rng = SmallRng::seed_from_u64(0);
    let err = trainer.fit_sharded(&mut model, data.as_slice(), data.len(), &mut rng).unwrap_err();
    std::panic::set_hook(hook);

    let TrainError::WorkerPanic { shard, message } = err else {
        panic!("expected WorkerPanic, got {err:?}");
    };
    // Sample 5 lives in shard 2 of the fixed [0,1][2,3][4,5][6,7] layout.
    assert_eq!(shard, 2);
    assert!(message.contains("poisoned sample 5"), "payload lost: {message}");
    // The step was aborted before the optimizer ran.
    assert_eq!(model.w.get(0, 0), 0.0);
    assert!(trainer.step_losses().is_empty());

    // The same trainer keeps working once the poison is gone — the pool
    // is not left in a wedged or half-written state.
    model.panic_on = None;
    let loss = trainer.fit_sharded(&mut model, data.as_slice(), data.len(), &mut rng).unwrap();
    assert!(loss.is_finite());
    assert_eq!(trainer.step_losses().len(), 2);
    assert!((model.w.get(0, 0) - 2.0).abs() < 2.0, "w moved toward the target");
}
