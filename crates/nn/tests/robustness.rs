//! Property tests for training robustness: no parameter may ever become
//! NaN/inf, predictions stay valid distributions, and freezing holds
//! under arbitrary data.

use nfv_nn::model::SeqBatch;
use nfv_nn::{Adam, Optimizer, SequenceModel, SequenceModelConfig, Sgd, Trainable};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn small_model(seed: u64, vocab: usize) -> SequenceModel {
    let mut rng = SmallRng::seed_from_u64(seed);
    SequenceModel::new(
        SequenceModelConfig {
            vocab,
            embed_dim: 5,
            hidden: 7,
            lstm_layers: 2,
            use_gap_feature: true,
        },
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Several optimizer steps on arbitrary (even adversarial) batches
    /// never destabilize the parameters.
    #[test]
    fn training_never_produces_non_finite_params(
        seed in 0u64..500,
        ids in prop::collection::vec(prop::collection::vec(0usize..9, 4), 2..6),
        targets_src in prop::collection::vec(0usize..9, 6),
        gap in 0.0f32..1.0,
    ) {
        let mut model = small_model(seed, 9);
        let batch = SeqBatch {
            gaps: ids.iter().map(|w| vec![gap; w.len()]).collect(),
            ids: ids.clone(),
        };
        let targets: Vec<usize> = targets_src.iter().take(ids.len()).copied().collect();
        prop_assume!(targets.len() == ids.len());

        let mut opt = Adam::new(0.05, &model.param_shapes());
        for _ in 0..5 {
            let loss = model.train_step(&batch, &targets, &mut opt);
            prop_assert!(loss.is_finite(), "loss became {}", loss);
        }
        for p in model.params() {
            prop_assert!(!p.has_non_finite(), "non-finite parameter after training");
        }
        let probs = model.predict_probs(&batch);
        prop_assert!(!probs.has_non_finite());
        for r in 0..probs.rows() {
            let s: f32 = probs.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-3, "row {} sums to {}", r, s);
        }
    }

    /// Loss on a fixed batch decreases (or at least does not explode)
    /// over a short SGD run for any seed.
    #[test]
    fn sgd_makes_progress(seed in 0u64..200) {
        let mut model = small_model(seed, 6);
        let batch = SeqBatch {
            ids: vec![vec![0, 1, 2, 3], vec![1, 2, 3, 4]],
            gaps: vec![vec![0.2; 4], vec![0.2; 4]],
        };
        let targets = vec![4usize, 5];
        let mut opt = Sgd::new(0.05, 0.9, &model.param_shapes());
        let first = model.evaluate_loss(&batch, &targets);
        for _ in 0..30 {
            model.train_step(&batch, &targets, &mut opt);
        }
        let last = model.evaluate_loss(&batch, &targets);
        prop_assert!(last < first, "loss {} -> {}", first, last);
    }

    /// Checkpoint roundtrips exactly for arbitrary seeds.
    #[test]
    fn checkpoint_roundtrip_is_exact(seed in 0u64..500) {
        let model = small_model(seed, 8);
        let restored = SequenceModel::from_checkpoint(&model.to_checkpoint());
        for (a, b) in model.params().iter().zip(restored.params().iter()) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    /// Optimizer step with all-None gradients is a no-op regardless of
    /// learning rate.
    #[test]
    fn fully_frozen_step_is_noop(lr in 0.001f32..10.0) {
        let mut model = small_model(3, 6);
        let before: Vec<Vec<f32>> =
            model.params().iter().map(|p| p.as_slice().to_vec()).collect();
        let shapes = model.param_shapes();
        let mut opt = Adam::new(lr, &shapes);
        let masks: Vec<Option<&nfv_tensor::Matrix>> = vec![None; shapes.len()];
        let mut params = model.params_mut();
        opt.step(&mut params, &masks);
        drop(params);
        let after: Vec<Vec<f32>> =
            model.params().iter().map(|p| p.as_slice().to_vec()).collect();
        prop_assert_eq!(before, after);
    }
}
