//! Persistent deterministic thread pool for every parallel region in the
//! workspace.
//!
//! Before this crate, each parallel region (`nfv_nn`'s sharded trainer,
//! `nfv_detect::par::par_blocks`, the batched fleet scorer) spawned fresh
//! OS threads per batch via `std::thread::scope` — correct, but the
//! spawn/join cost was paid on *every* training step and every scoring
//! fan-out. [`Pool`] keeps one long-lived worker per host core and hands
//! out scoped task dispatch instead: a [`Pool::scope`] costs two mutex
//! handshakes per task rather than a thread spawn.
//!
//! ## Determinism contract
//!
//! The pool is deliberately **work-stealing-free**, because the repo's
//! outputs must be bit-identical at every thread count:
//!
//! * Workers have **fixed identities** (`nfv-pool-0..n-1`), created once
//!   and reused for the life of the process.
//! * Tasks are assigned **by index, round-robin**: the `i`-th task
//!   spawned in a scope always runs on worker `i % size`, and each
//!   worker executes its tasks in ascending spawn order (FIFO queue).
//!   No queue is ever stolen from, so the mapping from task to worker —
//!   and the per-worker execution order — is a pure function of the
//!   spawn sequence, never of timing.
//! * The pool provides scheduling only. Callers keep the repo-wide
//!   invariants that make scheduling invisible: tasks write disjoint,
//!   index-ordered outputs, and any cross-task reduction happens on the
//!   caller in a fixed order after [`Pool::scope`] returns.
//!
//! Work stealing would improve tail latency on skewed task sizes, but
//! every hot region here fans out near-uniform blocks (row panels,
//! gradient shards, vPE blocks), so the win is small — and stealing
//! makes "which thread ran this" timing-dependent, which is exactly the
//! property the bit-identity suites exist to forbid. The same reasoning
//! rules out caller work-splicing: the caller parks until the scope
//! drains.
//!
//! ## Nesting
//!
//! A parallel region that runs *inside* a pool worker (e.g. a GEMM
//! issued from a gradient-shard task) degrades to inline serial
//! execution: [`PoolScope::spawn`] runs the task immediately on the
//! current thread. This keeps the pool deadlock-free by construction —
//! a worker never waits on another worker — and costs nothing in
//! determinism because outputs never depend on the schedule. Outer
//! regions own the cores; inner regions are already saturated.
//!
//! ## The one knob
//!
//! [`resolve_workers`] is the single worker-count policy for the whole
//! workspace: `0` means "auto" (one worker per host core), explicit
//! requests are capped at the host's core count (oversubscribing a
//! smaller box only adds context switches — a `--threads 4` run on one
//! core used to be ~20% *slower* than serial), and the result is capped
//! by the number of independent work items. `TrainerConfig::threads`,
//! `PipelineConfig::threads`, CLI `--threads` and the GEMM row-panel
//! fan-out all resolve through it.

use std::any::Any;
use std::cell::Cell;
use std::marker::PhantomData;
use std::mem;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle};

/// A task after lifetime erasure; soundness is restored by
/// [`Pool::scope`] refusing to return before every dispatched task has
/// finished.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Book-keeping shared between one scope and the workers running its
/// tasks.
struct ScopeSync {
    /// Dispatched tasks that have not finished yet.
    pending: usize,
    /// Lowest-index panic payload observed so far, if any.
    panic: Option<(usize, Box<dyn Any + Send>)>,
}

struct ScopeState {
    sync: Mutex<ScopeSync>,
    done: Condvar,
}

/// One dispatched task plus the scope it reports back to.
struct Job {
    index: usize,
    task: Task,
    state: Arc<ScopeState>,
}

thread_local! {
    /// True on pool worker threads; used to run nested regions inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is a pool worker. Parallel helpers check
/// this to degrade nested regions to serial instead of dispatching tasks
/// the busy workers could only run after finishing their current ones.
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Host core count, probed once (`available_parallelism`, min 1).
pub fn host_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// The single worker-count policy (see the module docs): `0` = auto (one
/// worker per host core); explicit requests are honored up to the host's
/// core count; both are then capped by `cap`, the number of independent
/// work items, and floored at 1.
pub fn resolve_workers(requested: usize, cap: usize) -> usize {
    let size = if requested == 0 { host_cores() } else { requested.min(host_cores()) };
    size.clamp(1, cap.max(1))
}

/// The process-wide pool: one worker per host core, created on first
/// use and kept for the life of the process.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(host_cores()))
}

/// A fixed set of long-lived worker threads with per-worker FIFO queues
/// and index-ordered task assignment. See the module docs for the
/// determinism contract.
pub struct Pool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Builds a pool with exactly `workers.max(1)` named workers. Most
    /// callers want [`global`]; explicit pools exist for tests and
    /// benchmarks that need a size other than the host's core count.
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            // The `pool.spawn` failpoint (and a real OS spawn failure —
            // thread exhaustion, rlimits) degrades to a smaller pool
            // instead of aborting: scheduling stays a pure function of
            // the spawn sequence and the surviving worker count, and a
            // pool with zero workers runs every task inline.
            if nfv_fail::io_check("pool.spawn").is_err() {
                continue;
            }
            let (tx, rx) = channel::<Job>();
            let spawned =
                thread::Builder::new().name(format!("nfv-pool-{w}")).spawn(move || worker_loop(rx));
            match spawned {
                Ok(handle) => {
                    senders.push(tx);
                    handles.push(handle);
                }
                Err(_) => continue,
            }
        }
        Pool { senders, handles }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Runs `f` with a [`PoolScope`] and blocks until every task it
    /// spawned has completed. If a task panicked, the panic with the
    /// lowest spawn index is resumed on the caller (after all tasks have
    /// drained, so `'scope` borrows stay sound); a panic in `f` itself
    /// is re-raised only when no task panicked.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope PoolScope<'scope, 'env>) -> R,
    {
        let scope = PoolScope {
            pool: self,
            state: Arc::new(ScopeState {
                sync: Mutex::new(ScopeSync { pending: 0, panic: None }),
                done: Condvar::new(),
            }),
            next: Cell::new(0),
            inline: in_worker(),
            scope_marker: PhantomData,
            env_marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Wait even when `f` panicked: dispatched tasks borrow `'scope`
        // data that must stay alive until they finish.
        let mut sync = scope.state.sync.lock().unwrap();
        while sync.pending > 0 {
            sync = scope.state.done.wait(sync).unwrap();
        }
        let task_panic = sync.panic.take();
        drop(sync);
        if let Some((_, payload)) = task_panic {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops; join so no worker
        // outlives the pool (matters for non-global pools in tests).
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Dispatch handle passed to the closure of [`Pool::scope`].
pub struct PoolScope<'scope, 'env: 'scope> {
    pool: &'scope Pool,
    state: Arc<ScopeState>,
    next: Cell<usize>,
    inline: bool,
    scope_marker: PhantomData<&'scope mut &'scope ()>,
    env_marker: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> PoolScope<'scope, 'env> {
    /// Dispatches one task. The `i`-th spawn of a scope runs on worker
    /// `i % pool.size()`, after any earlier task of this scope assigned
    /// to the same worker. On a pool worker thread (nested region) the
    /// task runs inline immediately instead.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.inline || self.pool.senders.is_empty() {
            f();
            return;
        }
        let index = self.next.get();
        self.next.set(index + 1);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `Pool::scope` does not return before `pending` drops
        // to zero, even on panic, so the task cannot outlive any
        // `'scope` borrow it captures.
        let task: Task = unsafe {
            mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send + 'static>>(
                task,
            )
        };
        self.state.sync.lock().unwrap().pending += 1;
        let worker = index % self.pool.senders.len();
        let job = Job { index, task, state: Arc::clone(&self.state) };
        if let Err(send_err) = self.pool.senders[worker].send(job) {
            // Unreachable while the pool is alive (`&self` borrows it),
            // but degrade gracefully: run the task here and settle the
            // pending count ourselves.
            let job = send_err.0;
            run_job(job);
        }
    }
}

/// Executes one job and reports completion (and any panic) to its scope.
fn run_job(job: Job) {
    let Job { index, task, state } = job;
    let result = catch_unwind(AssertUnwindSafe(task));
    let mut sync = state.sync.lock().unwrap();
    if let Err(payload) = result {
        // Keep the lowest spawn index: deterministic error reporting no
        // matter which worker finished first.
        if sync.panic.as_ref().is_none_or(|(i, _)| index < *i) {
            sync.panic = Some((index, payload));
        }
    }
    sync.pending -= 1;
    if sync.pending == 0 {
        state.done.notify_all();
    }
}

fn worker_loop(rx: Receiver<Job>) {
    IN_WORKER.with(|w| w.set(true));
    while let Ok(job) = rx.recv() {
        run_job(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_every_task_and_outputs_land_in_slots() {
        let pool = Pool::new(3);
        let mut out = vec![0usize; 10];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn scopes_are_reusable_across_many_batches() {
        let pool = Pool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn panic_propagates_with_lowest_task_index() {
        let pool = Pool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| {});
                s.spawn(|| panic!("task-1"));
                s.spawn(|| panic!("task-2"));
            });
        }));
        let payload = caught.expect_err("scope must re-raise the task panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "task-1", "the lowest spawn index wins");
    }

    #[test]
    fn tasks_drain_even_when_the_scope_closure_panics() {
        let pool = Pool::new(2);
        let ran = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("closure bail");
            });
        }));
        assert!(caught.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 8, "dispatched tasks must still run");
    }

    #[test]
    fn nested_scopes_degrade_to_inline_execution() {
        let pool = Pool::new(2);
        let mut out = vec![0usize; 4];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || {
                    assert!(in_worker());
                    // A nested region from inside a worker task must run
                    // inline (and therefore observe ascending order).
                    let mut inner = vec![0usize; 3];
                    global().scope(|ns| {
                        for (j, islot) in inner.iter_mut().enumerate() {
                            ns.spawn(move || *islot = j + 1);
                        }
                    });
                    assert_eq!(inner, vec![1, 2, 3]);
                    *slot = i + 10;
                });
            }
        });
        assert_eq!(out, vec![10, 11, 12, 13]);
    }

    #[test]
    fn resolve_workers_unifies_the_cap_policy() {
        let cores = host_cores();
        // 0 = auto: host cores, capped by the item count.
        assert_eq!(resolve_workers(0, 1), 1);
        assert_eq!(resolve_workers(0, usize::MAX), cores);
        // Explicit requests are capped at the host's core count too —
        // oversubscription is never honored.
        assert!(resolve_workers(64, usize::MAX) <= cores);
        assert_eq!(resolve_workers(1, usize::MAX), 1);
        // Degenerate cap still yields a worker.
        assert_eq!(resolve_workers(0, 0), 1);
        assert_eq!(resolve_workers(7, 0), 1);
    }

    #[test]
    fn fixed_assignment_is_a_pure_function_of_spawn_index() {
        // Record which worker thread ran each task; re-running the same
        // spawn sequence must reproduce the same assignment.
        let pool = Pool::new(3);
        let run = |pool: &Pool| -> Vec<String> {
            let mut names = vec![String::new(); 9];
            pool.scope(|s| {
                for slot in names.iter_mut() {
                    s.spawn(move || {
                        *slot = thread::current().name().unwrap_or("?").to_string();
                    });
                }
            });
            names
        };
        let first = run(&pool);
        for (i, name) in first.iter().enumerate() {
            assert_eq!(name, &format!("nfv-pool-{}", i % 3), "task {i} on a fixed worker");
        }
        assert_eq!(first, run(&pool), "assignment is reproducible");
    }
}
