//! End-to-end test of the `nfvpredict` CLI: simulate -> train -> detect
//! on real files, exactly as a user would run it.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nfvpredict"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nfvpredict_cli_{}", tag));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn simulate_train_detect_workflow() {
    let dir = temp_dir("workflow");
    let logs = dir.join("logs");

    // 1. Simulate a small deployment to raw files.
    let out = bin()
        .args(["simulate", "--out", logs.to_str().unwrap(), "--preset", "fast", "--seed", "5"])
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));
    let log_files: Vec<_> = std::fs::read_dir(&logs)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "log"))
        .collect();
    assert_eq!(log_files.len(), 10, "fast preset simulates 10 vPEs");
    assert!(logs.join("tickets.tsv").exists());

    // Raw files must be real syslog lines.
    let first_log = std::fs::read_to_string(log_files[0].path()).unwrap();
    let first_line = first_log.lines().next().unwrap();
    assert!(first_line.starts_with('<'), "not a syslog line: {}", first_line);

    // 2. Train a model bundle on month 0 (small settings for test speed).
    let model = dir.join("model.json");
    let out = bin()
        .args([
            "train",
            "--logs",
            logs.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--months",
            "1",
            "--window",
            "6",
            "--epochs",
            "1",
            "--tickets",
            logs.join("tickets.tsv").to_str().unwrap(),
        ])
        .output()
        .expect("run train");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("saved model bundle"), "{}", stdout);

    // 3. Detect on one vPE's feed.
    let target = log_files[0].path();
    let out = bin()
        .args(["detect", "--model", model.to_str().unwrap(), "--log", target.to_str().unwrap()])
        .output()
        .expect("run detect");
    assert!(out.status.success(), "detect failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scored"), "{}", stdout);
    assert!(stdout.contains("warning clusters"), "{}", stdout);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_usage() {
    let out = bin().output().expect("run without args");
    assert!(!out.status.success());

    let out = bin().args(["simulate"]).output().expect("simulate without --out");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    let out = bin()
        .args(["train", "--logs", "/nonexistent-dir-xyz", "--model", "/tmp/x.json"])
        .output()
        .expect("train on missing dir");
    assert!(!out.status.success());

    let out = bin().args(["frobnicate", "--x", "1"]).output().expect("unknown command");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}
