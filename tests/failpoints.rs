//! Tier-2 fault-injection matrix: every IO/durability boundary wired
//! with an `nfv_fail` failpoint is driven through its `err`, `torn` and
//! `delay` policies, and each injected fault must either *self-heal*
//! (retry within budget, degrade to warn-and-continue, fall back to an
//! older generation) or surface as a *typed error* — never a panic,
//! never a wrong answer.
//!
//! The file also locks the serve snapshot contract: a run interrupted
//! mid-stream and warm-restarted from its snapshot must produce final
//! stats, health ledgers and observer counters bitwise identical to an
//! uninterrupted run.
//!
//! The failpoint registry is process-global, so every test here
//! serializes on one mutex and starts from a cleared registry.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use nfv_detect::lstm_detector::LstmDetectorConfig;
use nfv_detect::pipeline::{
    run_pipeline, CrashPoint, DetectorKind, PipelineConfig, PipelineError, PipelineEvent,
    PipelineRun,
};
use nfv_detect::serve::{ServeConfig, ServeCore, ServeEvent, ServeStats};
use nfv_detect::{
    AnomalyDetector, FeedHealth, FleetMonitor, FleetMonitorConfig, LogCodec, LstmDetector,
    MappingConfig, ModelBundle, OnlineMonitor,
};
use nfv_pool::Pool;
use nfv_simnet::load::{BurstSpec, LoadGen, LoadSpec, WindowSpec};
use nfv_simnet::{FleetTrace, SimConfig, SimPreset, TransportFaults};

/// The registry is process-global; tests must not interleave.
fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    nfv_fail::clear();
    nfv_fail::set_seed(0);
    guard
}

fn scratch_dir(label: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "nfv_failpoints_{}_{}_{}",
        std::process::id(),
        label,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------
// Pipeline checkpoints under injected IO faults
// ---------------------------------------------------------------------

const MONTHS: usize = 4;

fn trace() -> &'static FleetTrace {
    static TRACE: OnceLock<FleetTrace> = OnceLock::new();
    TRACE.get_or_init(|| {
        let mut sim = SimConfig::preset(SimPreset::Fast, 11);
        sim.n_vpes = 3;
        sim.months = MONTHS;
        FleetTrace::simulate(sim)
    })
}

fn pca_cfg() -> PipelineConfig {
    PipelineConfig { detector: DetectorKind::Pca, threads: 1, ..PipelineConfig::default() }
}

/// Uninterrupted, checkpoint-free reference run.
fn baseline() -> &'static PipelineRun {
    static RUN: OnceLock<PipelineRun> = OnceLock::new();
    RUN.get_or_init(|| run_pipeline(trace(), &pca_cfg()).unwrap())
}

/// Bitwise equality of the result surface: event times, score bit
/// patterns, adaptations and surfaced events.
fn assert_same_results(a: &PipelineRun, b: &PipelineRun, label: &str) {
    assert_eq!(a.months.len(), b.months.len(), "{label}: month count");
    for (ma, mb) in a.months.iter().zip(&b.months) {
        assert_eq!(ma.month, mb.month, "{label}: month index");
        for (vpe, (ea, eb)) in ma.per_vpe.iter().zip(&mb.per_vpe).enumerate() {
            assert_eq!(ea.len(), eb.len(), "{label}: month {} vpe {} events", ma.month, vpe);
            for (x, y) in ea.iter().zip(eb.iter()) {
                assert_eq!(x.time, y.time, "{label}: event time");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{label}: score bits");
            }
        }
    }
    assert_eq!(a.adaptations, b.adaptations, "{label}: adaptations");
    assert_eq!(a.grouping.assignment, b.grouping.assignment, "{label}: grouping");
}

fn skip_events(run: &PipelineRun) -> Vec<(usize, u32)> {
    run.events
        .iter()
        .filter_map(|e| match e {
            PipelineEvent::CheckpointSkipped { month, attempts } => Some((*month, *attempts)),
            _ => None,
        })
        .collect()
}

#[test]
fn ckpt_save_errors_within_retry_budget_heal_bit_identically() {
    let _g = lock();
    let dir = scratch_dir("heal");
    // Two transient rename failures; the default retry budget is 3
    // attempts per boundary, so the first boundary heals on attempt 3.
    nfv_fail::configure("ckpt.save.rename=err(2)").unwrap();
    let mut cfg = pca_cfg();
    cfg.checkpoint.dir = Some(dir.clone());
    let run = run_pipeline(trace(), &cfg).unwrap();
    assert!(nfv_fail::fired("ckpt.save.rename") == 2, "both injected errors must fire");
    assert!(skip_events(&run).is_empty(), "a healed save must not be reported skipped");
    assert_same_results(baseline(), &run, "healed ckpt saves");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ckpt_save_errors_past_budget_degrade_to_skip_not_abort() {
    let _g = lock();
    let dir = scratch_dir("skip");
    // Every save attempt at every boundary fails: each boundary burns
    // its whole retry budget, reports a typed skip event, and the run
    // still completes with bit-identical results.
    nfv_fail::configure("ckpt.save=err(1000)").unwrap();
    let mut cfg = pca_cfg();
    cfg.checkpoint.dir = Some(dir.clone());
    let run = run_pipeline(trace(), &cfg).unwrap();
    let skips = skip_events(&run);
    assert_eq!(
        skips.len(),
        MONTHS,
        "every boundary (gen 0 + each month) must degrade to a skip: {:?}",
        skips
    );
    assert!(skips.iter().all(|&(_, attempts)| attempts == cfg.checkpoint.retry_attempts));
    assert_same_results(baseline(), &run, "all ckpt saves skipped");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_ckpt_write_from_failpoint_falls_back_on_resume() {
    let _g = lock();
    let dir = scratch_dir("torn");
    // The generation-0 write is torn (truncated but reported as a
    // success — the crash-mid-write failure mode), then the run is
    // killed right after that boundary. Resume must detect the torn
    // file by checksum and fall back — here to a fresh start — and
    // still match the uninterrupted run bit for bit.
    nfv_fail::configure("ckpt.save.write=torn(0.4)").unwrap();
    let mut cfg = pca_cfg();
    cfg.checkpoint.dir = Some(dir.clone());
    cfg.checkpoint.crash = Some(CrashPoint::AfterMonth(0));
    match run_pipeline(trace(), &cfg) {
        Err(PipelineError::CrashInjected(CrashPoint::AfterMonth(0))) => {}
        other => panic!("expected injected crash, got {:?}", other.err().map(|e| e.to_string())),
    }
    assert_eq!(nfv_fail::fired("ckpt.save.write"), 1, "the torn policy must have fired");

    nfv_fail::clear();
    let mut cfg = pca_cfg();
    cfg.checkpoint.dir = Some(dir.clone());
    cfg.checkpoint.resume = true;
    let resumed = run_pipeline(trace(), &cfg).unwrap();
    assert_same_results(baseline(), &resumed, "torn gen-0 fallback");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Model bundle IO under injected faults
// ---------------------------------------------------------------------

/// A tiny LoadGen-cadence spec shared by the bundle and serve tests.
fn serve_spec() -> LoadSpec {
    LoadSpec {
        feeds: 2,
        base_rate: 15,
        bursts: vec![BurstSpec { start: 10, len: 4, mult: 6 }],
        anomalies: vec![WindowSpec { start: 30, len: 3 }],
        faults: TransportFaults::parse("loss=0.05").unwrap(),
        seed: 0xABC,
        ..Default::default()
    }
}

/// One small trained bundle, shared across tests (training is the
/// expensive part; the bundle itself is immutable).
fn bundle() -> &'static ModelBundle {
    static BUNDLE: OnceLock<ModelBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let train = LoadGen::new(serve_spec()).training_messages(30);
        let codec = LogCodec::train(&train, 4);
        let mut det = LstmDetector::new(LstmDetectorConfig {
            vocab: codec.vocab_size(),
            window: 4,
            embed_dim: 6,
            hidden: 10,
            epochs: 3,
            max_train_windows: 2000,
            ..Default::default()
        });
        let stream = codec.encode_stream(&train);
        det.fit(&[&stream]);
        let max_score =
            det.score(&stream, 0, u64::MAX).iter().map(|e| e.score).fold(0.0f32, f32::max);
        ModelBundle::pack(&codec, &det, max_score * 1.05, &MappingConfig::default())
    })
}

#[test]
fn bundle_load_errors_heal_with_retry_and_fail_typed_past_budget() {
    let _g = lock();
    let dir = scratch_dir("bundle");
    let path = dir.join("model.json");
    bundle().save(&path).unwrap();

    // Two transient read errors heal inside a 3-attempt retry budget.
    nfv_fail::configure("bundle.load=err(2)").unwrap();
    let loaded = ModelBundle::load_with_retry(&path, 3, Duration::from_millis(1));
    assert!(loaded.is_ok(), "2 transient errors must heal in 3 attempts: {:?}", loaded.err());
    assert_eq!(nfv_fail::fired("bundle.load"), 2);

    // A persistent fault exhausts the budget and surfaces typed.
    nfv_fail::clear();
    nfv_fail::configure("bundle.load=err(1000)").unwrap();
    let denied = ModelBundle::load_with_retry(&path, 3, Duration::from_millis(1));
    assert!(denied.is_err(), "a persistent fault must fail typed, not hang or panic");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bundle_torn_write_is_caught_by_checksum_on_load() {
    let _g = lock();
    let dir = scratch_dir("bundle_torn");
    let path = dir.join("model.json");

    // The torn write reports success — exactly what a crash mid-write
    // looks like to the writer. The *reader* must catch it.
    nfv_fail::configure("bundle.save.write=torn(0.5)").unwrap();
    bundle().save(&path).expect("a torn write is indistinguishable from success to the writer");
    let torn = ModelBundle::load(&path);
    assert!(torn.is_err(), "a torn bundle must fail its checksum, not deserialize garbage");

    // With the fault gone, the same save/load pair round-trips.
    nfv_fail::clear();
    bundle().save(&path).unwrap();
    assert!(ModelBundle::load(&path).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Thread pool spawn failures
// ---------------------------------------------------------------------

#[test]
fn pool_spawn_failures_degrade_to_a_smaller_pool_that_still_computes() {
    let _g = lock();
    nfv_fail::configure("pool.spawn=err(2)").unwrap();
    let pool = Pool::new(4);
    assert_eq!(pool.size(), 2, "two failed spawns must shrink the pool, not abort it");

    // A fully failed spawn sequence leaves zero workers: every task
    // runs inline on the caller, and results stay correct.
    nfv_fail::clear();
    nfv_fail::configure("pool.spawn=err(1000)").unwrap();
    let inline = Pool::new(3);
    assert_eq!(inline.size(), 0);
    let results: Vec<Mutex<u64>> = (0..8).map(|_| Mutex::new(0)).collect();
    inline.scope(|s| {
        for (i, slot) in results.iter().enumerate() {
            s.spawn(move || {
                *slot.lock().unwrap() = (i as u64 + 1) * 3;
            });
        }
    });
    let sum: u64 = results.iter().map(|m| *m.lock().unwrap()).sum();
    assert_eq!(sum, (1..=8).map(|i| i * 3).sum::<u64>(), "inline fallback must still compute");
}

// ---------------------------------------------------------------------
// Serving runtime: watchdog, snapshots, warm restart
// ---------------------------------------------------------------------

fn fresh_core(spec: &LoadSpec) -> ServeCore<OnlineMonitor> {
    let shared = bundle().try_unpack_shared().expect("freshly packed bundle is valid");
    let monitors: Vec<OnlineMonitor> = (0..spec.feeds).map(|_| shared.monitor()).collect();
    let fleet =
        FleetMonitor::new(monitors, FleetMonitorConfig { reorder_window: 0, ..Default::default() });
    let cfg = ServeConfig { capacity: 256, tick_budget: 120, ..Default::default() };
    ServeCore::new(fleet, cfg)
}

/// Aggregates compared across interrupted and uninterrupted runs.
/// Latency quantiles (wall clock) and the bounded recent-event log
/// (restarts empty) are deliberately outside the bit-identity contract.
struct ServeOutcome {
    stats: ServeStats,
    healths: Vec<FeedHealth>,
    windows: Vec<(u64, u64)>,
}

fn drive(core: &mut ServeCore<OnlineMonitor>, spec: &LoadSpec, from: u64, to: u64) {
    let mut gen = LoadGen::new(spec.clone());
    gen.seek(from);
    for tick in from..to {
        for feed in 0..spec.feeds {
            for line in gen.tick_lines(tick, feed) {
                core.offer(feed, &line).unwrap();
            }
        }
        core.sweep();
    }
    core.finish();
}

fn outcome(core: &ServeCore<OnlineMonitor>, spec: &LoadSpec) -> ServeOutcome {
    let healths = core.fleet().healths().into_iter().cloned().collect();
    let windows = (0..spec.feeds)
        .map(|f| {
            let o = core.fleet().observer(f).expect("observer is live");
            (o.windows_scored(), o.windows_stride_skipped())
        })
        .collect();
    ServeOutcome { stats: core.stats(), healths, windows }
}

fn assert_same_serve(a: &ServeOutcome, b: &ServeOutcome, label: &str) {
    assert_eq!(a.stats.feeds, b.stats.feeds, "{label}: per-feed serve stats");
    assert_eq!(a.stats.ticks, b.stats.ticks, "{label}: sweep count");
    assert_eq!(a.stats.state, b.stats.state, "{label}: final state");
    assert_eq!(a.stats.warnings, b.stats.warnings, "{label}: warnings");
    assert_eq!(a.stats.degraded_episodes, b.stats.degraded_episodes, "{label}: episodes");
    assert_eq!(a.stats.watchdog_trips, b.stats.watchdog_trips, "{label}: watchdog trips");
    assert_eq!(a.healths, b.healths, "{label}: fleet health ledger");
    assert_eq!(a.windows, b.windows, "{label}: observer window counters");
}

#[test]
fn serve_snapshot_restart_is_bit_identical_to_uninterrupted() {
    let _g = lock();
    let spec = serve_spec();
    const TICKS: u64 = 60;
    const CUT: u64 = 30;

    let mut full = fresh_core(&spec);
    drive(&mut full, &spec, 0, TICKS);
    let full_out = outcome(&full, &spec);
    assert!(full_out.stats.warnings >= 1, "the anomaly window must warn in the reference run");

    // Interrupted run: stream to the cut, persist a snapshot, throw the
    // core away (the "crash"), warm-restart a fresh one from disk.
    let dir = scratch_dir("warm");
    let snap = dir.join("serve-snap.json");
    let mut first = fresh_core(&spec);
    {
        let mut gen = LoadGen::new(spec.clone());
        for tick in 0..CUT {
            for feed in 0..spec.feeds {
                for line in gen.tick_lines(tick, feed) {
                    first.offer(feed, &line).unwrap();
                }
            }
            first.sweep();
        }
        first.save_snapshot(&snap, CUT).unwrap();
    }
    drop(first);

    let mut resumed = fresh_core(&spec);
    let at = resumed.load_snapshot(&snap).unwrap();
    assert_eq!(at, CUT, "the snapshot must carry its load tick");
    drive(&mut resumed, &spec, at, TICKS);
    assert_same_serve(&full_out, &outcome(&resumed, &spec), "warm restart");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_snapshot_io_faults_are_typed_and_heal() {
    let _g = lock();
    let spec = serve_spec();
    let dir = scratch_dir("snapio");
    let snap = dir.join("serve-snap.json");
    let mut core = fresh_core(&spec);
    let mut gen = LoadGen::new(spec.clone());
    for tick in 0..5 {
        for feed in 0..spec.feeds {
            for line in gen.tick_lines(tick, feed) {
                core.offer(feed, &line).unwrap();
            }
        }
        core.sweep();
    }

    // err on rename: the save fails typed and the retry heals.
    nfv_fail::configure("serve.snapshot.rename=err(1)").unwrap();
    assert!(core.save_snapshot(&snap, 5).is_err(), "injected rename failure must be typed");
    assert!(core.save_snapshot(&snap, 5).is_ok(), "the next attempt must heal");

    // torn write: success to the writer, checksum failure to the reader.
    nfv_fail::configure("serve.snapshot.write=torn(0.5)").unwrap();
    core.save_snapshot(&snap, 5).expect("a torn write looks like success to the writer");
    assert!(
        fresh_core(&spec).load_snapshot(&snap).is_err(),
        "a torn snapshot must fail its checksum"
    );

    // With the fault cleared, save/load round-trips again; a transient
    // load error then heals on retry too.
    nfv_fail::clear();
    core.save_snapshot(&snap, 5).unwrap();
    nfv_fail::configure("serve.snapshot.load=err(1)").unwrap();
    assert!(fresh_core(&spec).load_snapshot(&snap).is_err());
    assert_eq!(fresh_core(&spec).load_snapshot(&snap).unwrap(), 5);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_heartbeat_stall_trips_watchdog_then_recovers() {
    let _g = lock();
    let spec = serve_spec();
    let mut core = fresh_core(&spec);
    let dog = core.spawn_watchdog(Duration::from_millis(10));

    // Each sweep stalls 60ms before bumping the heartbeat — six missed
    // deadlines per sweep from the watchdog's point of view.
    nfv_fail::configure("serve.heartbeat=delay(60)").unwrap();
    let mut events = Vec::new();
    let mut gen = LoadGen::new(spec.clone());
    for tick in 0..4u64 {
        for feed in 0..spec.feeds {
            for line in gen.tick_lines(tick, feed) {
                core.offer(feed, &line).unwrap();
            }
        }
        events.extend(core.sweep());
    }
    // Stall gone: the scorer drains and the state machine recovers.
    nfv_fail::clear();
    for tick in 4..40u64 {
        for feed in 0..spec.feeds {
            for line in gen.tick_lines(tick, feed) {
                core.offer(feed, &line).unwrap();
            }
        }
        events.extend(core.sweep());
    }
    events.extend(core.finish());
    dog.stop();

    let stats = core.stats();
    assert!(stats.watchdog_trips >= 1, "a stalled scorer must trip the watchdog");
    assert!(events.iter().any(|e| matches!(e, ServeEvent::WatchdogTrip { .. })));
    assert!(
        events.iter().any(|e| matches!(e, ServeEvent::Recovered { .. })),
        "the runtime must recover once the stall clears"
    );
    // Exact ledger even through the stall.
    for (feed, f) in stats.feeds.iter().enumerate() {
        assert_eq!(
            f.lines_in,
            f.delivered + f.dropped(),
            "feed {} accounting must stay exact through a watchdog trip",
            feed
        );
    }
}

// ---------------------------------------------------------------------
// Seed-swept chaos soak: every registered failpoint armed at once
// ---------------------------------------------------------------------

/// Arms every name in [`nfv_fail::KNOWN_POINTS`] (plus the write-stage
/// points the atomic-write tag scheme derives from them) with a
/// low-probability fault policy.
fn arm_everything() {
    nfv_fail::configure(concat!(
        "ckpt.save=err(1000000)@0.1;",
        "ckpt.save.create=err(1000000)@0.05;",
        "ckpt.save.write=err(1000000)@0.05;",
        "ckpt.save.rename=err(1000000)@0.1;",
        "ckpt.load=err(1000000)@0.2;",
        "bundle.save.rename=err(1000000)@0.2;",
        "bundle.load=err(1000000)@0.2;",
        "serve.snapshot.rename=err(1000000)@0.25;",
        "serve.snapshot.load=err(1000000)@0.25;",
        "serve.heartbeat=delay(1)@0.02;",
        "pool.spawn=err(1000000)@0.3",
    ))
    .unwrap();
}

#[test]
fn chaos_soak_every_failpoint_under_seed_sweep() {
    let _g = lock();
    let spec = serve_spec();
    // Materialize the shared fixtures before arming anything.
    let clean_pipeline = baseline();
    let model = bundle();

    for seed in [1u64, 2, 3] {
        nfv_fail::clear();
        nfv_fail::set_seed(seed);
        arm_everything();
        let label = format!("chaos seed {}", seed);

        // Degraded-but-correct pool construction.
        let pool = Pool::new(4);
        assert!(pool.size() <= 4, "{label}: pool never grows past the request");

        // Bundle round-trip: saves retry in a bounded loop (the CLI's
        // policy), loads use the built-in retry; both end typed or Ok.
        let dir = scratch_dir("soak");
        let path = dir.join("model.json");
        let mut saved = false;
        for _ in 0..8 {
            if model.save(&path).is_ok() {
                saved = true;
                break;
            }
        }
        assert!(saved, "{label}: bundle save must succeed within 8 attempts at p=0.2");
        ModelBundle::load_with_retry(&path, 8, Duration::from_millis(1))
            .unwrap_or_else(|e| panic!("{label}: bundle load must heal within 8 attempts: {e}"));

        // Full pipeline with checkpointing: transient save faults heal
        // or degrade to typed skips; results stay bit-identical.
        let mut cfg = pca_cfg();
        cfg.checkpoint.dir = Some(dir.join("ckpt"));
        cfg.checkpoint.retry_backoff_ms = 1;
        let run = run_pipeline(trace(), &cfg)
            .unwrap_or_else(|e| panic!("{label}: pipeline must survive the soak: {e}"));
        assert_same_results(clean_pipeline, &run, &label);

        // Serving under the soak: snapshot mid-stream (in memory, like
        // the periodic saver), finish the run, then warm-restart from
        // the snapshot and demand bit-identical aggregates.
        let mut core = fresh_core(&spec);
        let mut gen = LoadGen::new(spec.clone());
        let mut snapshot = None;
        for tick in 0..40u64 {
            for feed in 0..spec.feeds {
                for line in gen.tick_lines(tick, feed) {
                    core.offer(feed, &line).unwrap();
                }
            }
            core.sweep();
            if tick + 1 == 20 {
                snapshot = Some(core.snapshot_value(20).unwrap());
            }
        }
        core.finish();
        let full = outcome(&core, &spec);
        for (feed, f) in full.stats.feeds.iter().enumerate() {
            assert_eq!(
                f.lines_in,
                f.delivered + f.dropped(),
                "{label}: feed {feed} ledger must stay exact under chaos"
            );
        }
        let mut resumed = fresh_core(&spec);
        let at = resumed.restore_snapshot(&snapshot.expect("snapshot taken at tick 20")).unwrap();
        drive(&mut resumed, &spec, at, 40);
        assert_same_serve(&full, &outcome(&resumed, &spec), &label);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
