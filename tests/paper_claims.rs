//! Integration checks of the simulator against the paper's published
//! statistics (§2, §3) — the calibration targets listed in DESIGN.md.

use nfvpredict::prelude::*;
use nfvpredict::simnet::ppe::{physical_fraction, simulate_ppe, volume_comparison};
use nfvpredict::simnet::tickets::generate_tickets;
use nfvpredict::syslog::time::{month_start, HOUR, MINUTE};
use nfvpredict::tensor::vecops::cosine_similarity;

#[test]
fn fig1b_interarrival_quantiles() {
    let cfg = SimConfig::preset(SimPreset::Full, 3);
    let tickets = generate_tickets(&cfg);
    let mut gaps: Vec<u64> = Vec::new();
    for vpe in 0..cfg.n_vpes {
        // Fault tickets only: duplicates arrive in bursts by design and
        // maintenance is pre-scheduled (its periodicity would cap the
        // observable gaps), so the Fig 1(b) quantiles are calibrated on
        // the unscheduled root causes.
        let mut times: Vec<u64> = tickets
            .iter()
            .filter(|t| {
                t.vpe == vpe
                    && t.cause != TicketCause::Duplicate
                    && t.cause != TicketCause::Maintenance
            })
            .map(|t| t.report_time)
            .collect();
        times.sort_unstable();
        gaps.extend(times.windows(2).map(|w| w[1] - w[0]));
    }
    assert!(!gaps.is_empty());
    let frac_over = |s: u64| gaps.iter().filter(|&&g| g > s).count() as f64 / gaps.len() as f64;
    // Correlated core incidents can land inside another ticket's window,
    // so allow a tiny violation mass below the 40-minute floor.
    let under_floor = 1.0 - frac_over(40 * MINUTE);
    assert!(under_floor < 0.02, "fraction under 40 min: {}", under_floor);
    assert!((frac_over(10 * HOUR) - 0.80).abs() < 0.10, "P(>10h) {}", frac_over(10 * HOUR));
    // Right-censoring at the window end shaves the heaviest tail, so
    // the observed fraction sits a little under the sampled 0.25.
    assert!((0.10..0.35).contains(&frac_over(1000 * HOUR)), "P(>1000h) {}", frac_over(1000 * HOUR));
}

#[test]
fn fig3_similarity_spread_with_outliers() {
    let mut cfg = SimConfig::preset(SimPreset::Full, 5);
    cfg.months = 2; // two months of logs suffice for the distribution
    cfg.update_month = None;
    let trace = FleetTrace::simulate(cfg.clone());
    let vocab = trace.catalog.set.len();

    let streams: Vec<LogStream> = (0..cfg.n_vpes).map(|v| trace.ground_truth_stream(v)).collect();
    let mut agg = vec![0.0f32; vocab];
    for s in &streams {
        for r in s.records() {
            agg[r.template] += 1.0;
        }
    }
    let sims: Vec<f32> = streams
        .iter()
        .map(|s| {
            let d = s.template_distribution(vocab, 0, month_start(cfg.months));
            cosine_similarity(&d, &agg)
        })
        .collect();

    let above = sims.iter().filter(|&&s| s > 0.8).count();
    let below = sims.iter().filter(|&&s| s < 0.5).count();
    // Paper: about a third of vPEs above 0.8; 5 vPEs below 0.5.
    assert!(above >= cfg.n_vpes / 4, "only {} vPEs above 0.8", above);
    assert!((3..=8).contains(&below), "{} vPEs below 0.5", below);
}

#[test]
fn vpe_volume_is_77_percent_below_ppe() {
    let mut cfg = SimConfig::preset(SimPreset::Fast, 9);
    cfg.months = 2;
    cfg.n_vpes = 3;
    let trace = FleetTrace::simulate(cfg.clone());
    let vpe = trace.ground_truth_stream(0);
    let ppe = simulate_ppe(&cfg, &trace.catalog, 77);
    let (_, _, reduction) = volume_comparison(&vpe, &ppe);
    assert!((0.68..0.85).contains(&reduction), "reduction {}", reduction);
    // Virtualization hides the physical layer.
    assert!(physical_fraction(&vpe, &trace.catalog) < 0.01);
    assert!(physical_fraction(&ppe, &trace.catalog) > 0.3);
}

#[test]
fn update_breaks_month_over_month_similarity() {
    let mut cfg = SimConfig::preset(SimPreset::Fast, 21);
    cfg.months = 6;
    cfg.n_vpes = 6;
    cfg.update_month = Some(3);
    cfg.update_fraction = 1.0;
    let trace = FleetTrace::simulate(cfg.clone());
    let vocab = trace.catalog.set.len();

    for vpe in 0..cfg.n_vpes {
        let s = trace.ground_truth_stream(vpe);
        let dist = |m: usize| s.template_distribution(vocab, month_start(m), month_start(m + 1));
        let stable = cosine_similarity(&dist(1), &dist(2));
        let across = cosine_similarity(&dist(2), &dist(4));
        assert!(stable > 0.8, "vpe {} pre-update stability {}", vpe, stable);
        assert!(across < 0.45, "vpe {} across-update similarity {}", vpe, across);
    }
}

#[test]
fn raw_text_path_equals_ground_truth_structure() {
    // The signature-tree codec must recover template identity: encoding
    // raw lines and using ground-truth catalog ids give the same
    // equivalence classes on normal traffic.
    let mut cfg = SimConfig::preset(SimPreset::Fast, 31);
    cfg.months = 2;
    cfg.n_vpes = 3;
    let trace = FleetTrace::simulate(cfg);

    let sample: Vec<SyslogMessage> = trace.messages(0).iter().take(3000).cloned().collect();
    let codec = LogCodec::train(&sample, 8);

    let truth = trace.ground_truth_stream(1);
    let encoded = codec.encode_stream(trace.messages(1));
    assert_eq!(truth.len(), encoded.len());

    // Same catalog template -> same dense id (on templates the codec saw).
    let mut dense_of_truth: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut consistent = 0usize;
    let mut total = 0usize;
    for (t, e) in truth.records().iter().zip(encoded.records().iter()) {
        if e.template == 0 {
            continue; // unknown to the codec (rare fault templates)
        }
        total += 1;
        match dense_of_truth.insert(t.template, e.template) {
            None => consistent += 1,
            Some(prev) if prev == e.template => consistent += 1,
            Some(_) => {}
        }
    }
    assert!(total > 1000, "too few encodable records: {}", total);
    let frac = consistent as f64 / total as f64;
    assert!(frac > 0.97, "codec consistency {}", frac);
}
