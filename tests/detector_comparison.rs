//! Fig 6 integration check: the deep detectors (LSTM, autoencoder)
//! should beat the shallow One-Class SVM under the identical pipeline,
//! and the LSTM should not trail the autoencoder.

use nfvpredict::prelude::*;

#[test]
fn deep_detectors_beat_shallow_ocsvm() {
    let mut sim = SimConfig::preset(SimPreset::Fast, 72);
    sim.n_vpes = 6;
    sim.months = 3;
    let trace = FleetTrace::simulate(sim);

    let mut best_f = std::collections::HashMap::new();
    for kind in [DetectorKind::Lstm, DetectorKind::Autoencoder, DetectorKind::Ocsvm] {
        let mut cfg = PipelineConfig { detector: kind, ..Default::default() };
        cfg.lstm.epochs = 2;
        cfg.lstm.oversample_rounds = 1;
        cfg.lstm.max_train_windows = 6_000;
        cfg.autoencoder.epochs = 15;
        let run = run_pipeline(&trace, &cfg).unwrap();
        let f = eval::sweep_prc(&run, &cfg.mapping, 20)
            .best_f_point()
            .map(|p| p.f_measure)
            .unwrap_or(0.0);
        best_f.insert(format!("{:?}", kind), f);
    }

    let lstm = best_f["Lstm"];
    let ae = best_f["Autoencoder"];
    let svm = best_f["Ocsvm"];
    assert!(lstm > svm + 0.05, "LSTM ({:.3}) should clearly beat OC-SVM ({:.3})", lstm, svm);
    assert!(ae > svm, "Autoencoder ({:.3}) should beat OC-SVM ({:.3})", ae, svm);
    assert!(lstm >= ae - 0.05, "LSTM ({:.3}) should not trail Autoencoder ({:.3})", lstm, ae);
}
