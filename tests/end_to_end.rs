//! End-to-end integration: raw syslog text -> signature tree -> LSTM
//! pipeline -> ticket mapping, asserting the qualitative claims of the
//! paper on a small simulated deployment.

use nfvpredict::prelude::*;

fn small_trace(seed: u64) -> FleetTrace {
    let mut sim = SimConfig::preset(SimPreset::Fast, seed);
    sim.n_vpes = 6;
    sim.months = 3;
    FleetTrace::simulate(sim)
}

fn small_pipeline() -> PipelineConfig {
    let mut cfg = PipelineConfig::default();
    cfg.lstm.epochs = 2;
    cfg.lstm.oversample_rounds = 1;
    cfg.lstm.hidden = 24;
    cfg.lstm.max_train_windows = 6_000;
    cfg
}

#[test]
fn lstm_pipeline_reaches_useful_operating_point() {
    let trace = small_trace(42);
    let cfg = small_pipeline();
    let run = run_pipeline(&trace, &cfg).unwrap();

    assert_eq!(run.months.len(), 2, "tests months 1 and 2");
    assert!(run.vocab > 10, "codec should mine a real vocabulary");

    let curve = eval::sweep_prc(&run, &cfg.mapping, 24);
    let best = curve.best_f_point().expect("non-empty PRC");
    // The paper operates around precision 0.80 / recall 0.81. Leave slack
    // for the small test configuration, but demand a clearly useful
    // detector.
    assert!(best.precision > 0.6, "precision {}", best.precision);
    assert!(best.recall > 0.6, "recall {}", best.recall);
    assert!(best.f_measure > 0.65, "F {}", best.f_measure);

    // False alarms must be bounded at the operating point.
    let fa = eval::false_alarms_per_day(&run, &cfg.mapping, best.threshold);
    assert!(fa < 2.0, "false alarms per day {}", fa);
}

#[test]
fn anomalies_precede_tickets_like_fig8() {
    let trace = small_trace(9);
    let cfg = small_pipeline();
    let run = run_pipeline(&trace, &cfg).unwrap();
    let threshold =
        eval::sweep_prc(&run, &cfg.mapping, 24).best_f_point().expect("curve").threshold;

    let rows = eval::per_type_detection(&run, &cfg.mapping, threshold, &eval::FIG8_OFFSETS);
    let rate = |cause: Option<TicketCause>, col: usize| {
        rows.iter().find(|(c, _, _)| *c == cause).map(|(_, r, _)| r[col]).unwrap_or(0.0)
    };
    // Column 2 is offset 0 (pre-ticket detection); column 4 is +15 min.
    let circuit_pre = rate(Some(TicketCause::Circuit), 2);
    let hardware_pre = rate(Some(TicketCause::Hardware), 2);
    assert!(
        circuit_pre > hardware_pre,
        "circuit ({}) should lead hardware ({}) in pre-ticket detection",
        circuit_pre,
        hardware_pre
    );
    // The paper's Q2: the majority of tickets show anomalies by +15 min.
    let all_15 = rate(None, 4);
    assert!(all_15 > 0.6, "detection by +15 min: {}", all_15);
    // Detection rates are monotone in the offset.
    for (_, rates, _) in &rows {
        for w in rates.windows(2) {
            assert!(w[0] <= w[1] + 1e-6);
        }
    }
}

#[test]
fn customization_does_not_hurt_and_grouping_is_plausible() {
    let trace = small_trace(13);
    let mut cfg = small_pipeline();

    cfg.customize = false;
    let single = run_pipeline(&trace, &cfg).unwrap();
    assert_eq!(single.grouping.k, 1);

    cfg.customize = true;
    let grouped = run_pipeline(&trace, &cfg).unwrap();
    assert!(grouped.grouping.k >= 2, "expected multiple vPE groups");

    let f_single = eval::sweep_prc(&single, &cfg.mapping, 20)
        .best_f_point()
        .map(|p| p.f_measure)
        .unwrap_or(0.0);
    let f_grouped = eval::sweep_prc(&grouped, &cfg.mapping, 20)
        .best_f_point()
        .map(|p| p.f_measure)
        .unwrap_or(0.0);
    // On this small config both work; customization must not collapse.
    assert!(f_grouped > f_single - 0.1, "customized F {} vs single F {}", f_grouped, f_single);
}

#[test]
fn predictive_period_of_one_hour_is_no_better_than_one_day() {
    // Fig 5: the PRC improves (or converges) as the predictive period
    // grows from 1 hour to 1 day.
    let trace = small_trace(19);
    let cfg = small_pipeline();
    let run = run_pipeline(&trace, &cfg).unwrap();

    let f_at = |period: u64| {
        let mut mapping = cfg.mapping;
        mapping.predictive_period = period;
        eval::sweep_prc(&run, &mapping, 20).best_f_point().map(|p| p.f_measure).unwrap_or(0.0)
    };
    let f_1h = f_at(3_600);
    let f_1d = f_at(86_400);
    assert!(f_1d >= f_1h - 0.05, "1-day F {} should not trail 1-hour F {}", f_1d, f_1h);
}
