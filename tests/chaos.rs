//! Tier-2 chaos test: the supervised fleet monitor under transport
//! faults.
//!
//! A 38-feed fleet (the paper's vPE count) is streamed through the
//! [`FleetMonitor`] twice — once clean, once through a [`TransportSim`]
//! injecting 5% loss, 2% duplication, 30s bounded reordering and 1%
//! corruption — and the runs are compared:
//!
//! * the faulted run completes without a panic and no feed is poisoned;
//! * every feed is accounted for, with health counters that exactly
//!   partition the delivered lines;
//! * warning recall degrades by no more than 10% relative to the clean
//!   run.
//!
//! A second scenario points a bursty firehose (2–10x scorer capacity,
//! 5% loss) at the [`ServeCore`] serving runtime and asserts bounded
//! memory, exact drop accounting, deterministic degrade-and-recover,
//! and that anomalies injected after recovery are still caught.

use nfv_detect::lstm_detector::LstmDetectorConfig;
use nfv_detect::serve::{ServeConfig, ServeCore, ServeEvent, ServeState, ServeStats};
use nfv_detect::{
    AnomalyDetector, FeedHealth, FeedState, FleetEvent, FleetMonitor, FleetMonitorConfig, LogCodec,
    LstmDetector, MappingConfig, ModelBundle, OnlineMonitor,
};
use nfv_simnet::load::{BurstSpec, LoadGen, LoadSpec, WindowSpec};
use nfv_simnet::{TransportFaults, TransportSim};
use nfv_syslog::message::Severity;
use nfv_syslog::SyslogMessage;

/// The paper's fleet size.
const FEEDS: usize = 38;
/// Heartbeats per feed (60s apart).
const NORMALS: usize = 220;
/// Indices after which an anomaly burst is injected.
const BURSTS: [usize; 2] = [80, 160];
/// Messages per burst (10s apart; well above `min_cluster`).
const BURST_LEN: u64 = 5;

fn msg(feed: usize, time: u64, text: &str) -> SyslogMessage {
    SyslogMessage {
        timestamp: time,
        host: format!("vpe{:02}", feed),
        process: "rpd".to_string(),
        severity: Severity::Info,
        text: text.to_string(),
    }
}

/// Cyclic normal chatter the LSTM learns to predict.
fn normal_text(i: usize) -> String {
    format!("heartbeat stage{} counter {} status ok", i % 4, i)
}

/// Trains one small detector on clean cyclic traffic and packs it the
/// way the CLI would ship it to a monitoring host.
fn trained_bundle() -> ModelBundle {
    let train: Vec<SyslogMessage> =
        (0..1200).map(|i| msg(0, i as u64 * 60, &normal_text(i))).collect();
    let codec = LogCodec::train(&train, 4);
    let mut det = LstmDetector::new(LstmDetectorConfig {
        vocab: codec.vocab_size(),
        window: 4,
        embed_dim: 6,
        hidden: 10,
        epochs: 3,
        max_train_windows: 2000,
        ..Default::default()
    });
    let stream = codec.encode_stream(&train);
    det.fit(&[&stream]);
    // Threshold just above every training score.
    let max_score = det.score(&stream, 0, u64::MAX).iter().map(|e| e.score).fold(0.0f32, f32::max);
    ModelBundle::pack(&codec, &det, max_score * 1.05, &MappingConfig::default())
}

/// One feed's stream: steady 60s heartbeats with two never-seen anomaly
/// bursts at known positions. Burst lines are distinct so the dedup ring
/// cannot legitimately swallow them.
fn feed_messages(feed: usize) -> Vec<SyslogMessage> {
    let mut out = Vec::new();
    for i in 0..NORMALS {
        out.push(msg(feed, i as u64 * 60, &normal_text(i)));
        if BURSTS.contains(&i) {
            for j in 0..BURST_LEN {
                out.push(msg(
                    feed,
                    i as u64 * 60 + 5 + j * 10,
                    &format!("chassis alarm unknown fault storm event {} feed {}", j, feed),
                ));
            }
        }
    }
    out
}

/// A fresh supervised fleet, one monitor per feed, all sharing one
/// unpacked model.
fn fresh_fleet(bundle: &ModelBundle) -> FleetMonitor {
    let shared = bundle.try_unpack_shared().expect("freshly packed bundle is valid");
    let monitors: Vec<OnlineMonitor> = (0..FEEDS).map(|_| shared.monitor()).collect();
    FleetMonitor::new(monitors, FleetMonitorConfig::default())
}

/// Streams per-feed raw lines through a fleet; returns all events.
fn run_fleet(fleet: &mut FleetMonitor, lines_per_feed: &[Vec<String>]) -> Vec<FleetEvent> {
    let mut events = Vec::new();
    for (feed, lines) in lines_per_feed.iter().enumerate() {
        for line in lines {
            events.extend(fleet.ingest_line(feed, line));
        }
    }
    events.extend(fleet.flush());
    events
}

fn warning_count(events: &[FleetEvent]) -> usize {
    events.iter().filter(|e| matches!(e, FleetEvent::Warning { .. })).count()
}

#[test]
fn fleet_monitor_survives_transport_chaos_with_recall_intact() {
    let bundle = trained_bundle();
    let streams: Vec<Vec<SyslogMessage>> = (0..FEEDS).map(feed_messages).collect();

    // Clean reference run.
    let clean_lines: Vec<Vec<String>> =
        streams.iter().map(|s| s.iter().map(|m| m.to_line()).collect()).collect();
    let mut clean_fleet = fresh_fleet(&bundle);
    let clean_events = run_fleet(&mut clean_fleet, &clean_lines);
    let clean_warnings = warning_count(&clean_events);
    // Two bursts per feed, each reported once.
    assert!(
        clean_warnings >= FEEDS,
        "clean run should warn on most bursts, got {} warnings for {} bursts",
        clean_warnings,
        FEEDS * BURSTS.len()
    );

    // Faulted run: the ISSUE's chaos profile.
    let faults = TransportFaults::parse("loss=0.05,dup=0.02,reorder=30,corrupt=0.01").unwrap();
    let sim = TransportSim::new(faults, 0xC0FFEE);
    let faulted: Vec<Vec<String>> =
        streams.iter().enumerate().map(|(f, s)| sim.deliver(f, s)).collect();
    let mut fleet = fresh_fleet(&bundle);
    let events = run_fleet(&mut fleet, &faulted);

    // Surviving the stream at all is the zero-panic half of the claim;
    // no monitor may have been poisoned along the way.
    assert!(
        !events.iter().any(|e| matches!(e, FleetEvent::FeedPoisoned { .. })),
        "no monitor should panic under transport faults"
    );

    // Every feed accounted for, with exact line accounting: each
    // delivered line lands in exactly one health counter.
    let healths = fleet.healths();
    assert_eq!(healths.len(), FEEDS);
    for (feed, h) in healths.iter().enumerate() {
        assert_eq!(h.state, FeedState::Active, "feed {} should stay active", feed);
        assert!(h.messages > 0, "feed {} processed no messages", feed);
        let delivered = faulted[feed].len() as u64;
        assert_eq!(
            h.messages + h.parse_errors + h.duplicates_dropped + h.skipped,
            delivered,
            "feed {} counters do not partition its {} delivered lines: {:?}",
            feed,
            delivered,
            h
        );
    }
    let total_parse_errors: u64 = healths.iter().map(|h| h.parse_errors).sum();
    let total_dups: u64 = healths.iter().map(|h| h.duplicates_dropped).sum();
    assert!(total_parse_errors > 0, "1% corruption must produce some unparseable lines");
    assert!(total_dups > 0, "2% duplication must trip the dedup ring");

    // Recall: warnings may not degrade more than 10% relative.
    let faulted_warnings = warning_count(&events);
    let lost = clean_warnings.saturating_sub(faulted_warnings);
    assert!(
        lost * 10 <= clean_warnings,
        "warning recall degraded over 10%: {} clean vs {} faulted",
        clean_warnings,
        faulted_warnings
    );
}

/// The overload scenario from the ISSUE: three feeds whose steady rate
/// the scorer handles comfortably, a 10x firehose burst and a later 4x
/// burst, all under 5% transport loss.
fn overload_spec() -> LoadSpec {
    LoadSpec {
        feeds: 3,
        base_rate: 25,
        bursts: vec![
            BurstSpec { start: 10, len: 8, mult: 10 },
            BurstSpec { start: 45, len: 6, mult: 4 },
        ],
        // Injected after both bursts have drained: the monitor must
        // still catch anomalies once it has recovered to full stride.
        anomalies: vec![WindowSpec { start: 70, len: 4 }],
        faults: TransportFaults::parse("loss=0.05").unwrap(),
        seed: 0xF1EE7,
        ..Default::default()
    }
}

/// Trains a bundle on the load generator's own clean cadence, the way
/// the serve CLI self-trains.
fn serve_bundle(spec: &LoadSpec) -> ModelBundle {
    let train = LoadGen::new(spec.clone()).training_messages(30);
    let codec = LogCodec::train(&train, 4);
    let mut det = LstmDetector::new(LstmDetectorConfig {
        vocab: codec.vocab_size(),
        window: 4,
        embed_dim: 6,
        hidden: 10,
        epochs: 3,
        max_train_windows: 2000,
        ..Default::default()
    });
    let stream = codec.encode_stream(&train);
    det.fit(&[&stream]);
    let max_score = det.score(&stream, 0, u64::MAX).iter().map(|e| e.score).fold(0.0f32, f32::max);
    ModelBundle::pack(&codec, &det, max_score * 1.05, &MappingConfig::default())
}

/// Everything observable about one overload run: the stats snapshot,
/// the full event stream, the fleet's per-feed health ledger, and
/// per-feed `(windows_scored, windows_stride_skipped)` observer
/// counters.
struct OverloadRun {
    stats: ServeStats,
    events: Vec<ServeEvent>,
    healths: Vec<FeedHealth>,
    windows: Vec<(u64, u64)>,
}

/// Drives one full overload scenario through a fresh serving runtime in
/// step mode (offer + sweep per tick, no wall clock).
fn run_overload(bundle: &ModelBundle, spec: &LoadSpec) -> OverloadRun {
    let shared = bundle.try_unpack_shared().expect("freshly packed bundle is valid");
    let monitors: Vec<OnlineMonitor> = (0..spec.feeds).map(|_| shared.monitor()).collect();
    let fleet =
        FleetMonitor::new(monitors, FleetMonitorConfig { reorder_window: 0, ..Default::default() });
    let cfg = ServeConfig {
        capacity: 256,
        // Quota of 40 lines per feed per sweep: comfortable at the base
        // rate of 25, hopeless against the 10x burst.
        tick_budget: 120,
        degrade_enter: 0.5,
        degrade_exit: 0.125,
        recover_ticks: 3,
        degraded_stride: 4,
        ..Default::default()
    };
    let mut core = ServeCore::new(fleet, cfg);
    let mut gen = LoadGen::new(spec.clone());
    let mut events = Vec::new();
    for tick in 0..90u64 {
        for feed in 0..spec.feeds {
            for line in gen.tick_lines(tick, feed) {
                core.offer(feed, &line).unwrap();
            }
        }
        events.extend(core.sweep());
    }
    events.extend(core.finish());
    // Bounded memory also covers the event log itself.
    assert!(core.recent_events().count() <= 64, "recent-event log must stay bounded");
    let healths = core.fleet().healths().into_iter().cloned().collect();
    let windows = (0..spec.feeds)
        .map(|f| {
            let o = core.fleet().observer(f).expect("observer is live");
            (o.windows_scored(), o.windows_stride_skipped())
        })
        .collect();
    OverloadRun { stats: core.stats(), events, healths, windows }
}

#[test]
fn serving_runtime_sheds_firehose_load_with_exact_accounting() {
    let spec = overload_spec();
    let bundle = serve_bundle(&spec);

    let OverloadRun { stats, events, healths, windows } = run_overload(&bundle, &spec);

    // Bounded memory: no ring ever held more than its fixed capacity.
    for (feed, f) in stats.feeds.iter().enumerate() {
        assert!(
            f.peak_occupancy <= 256,
            "feed {} ring grew past capacity: {}",
            feed,
            f.peak_occupancy
        );
    }

    // Exact accounting, per feed and against the fleet's own ledger:
    // every offered line is either delivered or counted dropped, the
    // fleet's overload counter matches the runtime's, and every
    // delivered line lands in exactly one health counter.
    for (feed, f) in stats.feeds.iter().enumerate() {
        assert!(f.lines_in > 0, "feed {} saw no input", feed);
        assert_eq!(
            f.lines_in,
            f.delivered + f.dropped_overflow + f.dropped_shed,
            "feed {} drop accounting is not exact: {:?}",
            feed,
            f
        );
        let h = &healths[feed];
        assert_eq!(h.overload_dropped, f.dropped(), "feed {} fleet ledger disagrees", feed);
        assert_eq!(h.state, FeedState::Active, "feed {} must survive the firehose", feed);
        assert_eq!(
            h.messages + h.parse_errors + h.duplicates_dropped + h.skipped,
            f.delivered,
            "feed {} health counters do not partition its delivered lines: {:?}",
            feed,
            h
        );
    }
    let overflow: u64 = stats.feeds.iter().map(|f| f.dropped_overflow).sum();
    let shed: u64 = stats.feeds.iter().map(|f| f.dropped_shed).sum();
    assert!(overflow > 0, "the 10x burst must overflow the bounded rings");
    assert!(shed > 0, "drop-oldest shedding must engage under sustained overload");

    // Graceful degradation engaged, stride shedding really skipped
    // windows, and the runtime recovered once the bursts drained.
    assert!(stats.degraded_episodes >= 1, "overload must force a degraded episode");
    assert!(events.iter().any(|e| matches!(e, ServeEvent::Degraded { .. })));
    assert!(events.iter().any(|e| matches!(e, ServeEvent::Recovered { .. })));
    assert!(
        events.iter().any(|e| matches!(
            e,
            ServeEvent::Fleet { event: FleetEvent::FeedOverloaded { .. }, .. }
        )),
        "overload episodes must surface as fleet events"
    );
    assert_eq!(stats.state, ServeState::Healthy, "runtime must recover after the firehose");
    assert_eq!(stats.watchdog_trips, 0, "a live scorer must never trip the watchdog");
    let skipped: u64 = windows.iter().map(|&(_, s)| s).sum();
    assert!(skipped > 0, "degraded stride must actually skip windows");

    // The anomaly window injected after recovery must still warn.
    assert!(stats.warnings >= 1, "post-recovery anomalies must still be caught");

    // Deterministic replay: a fresh fleet over the same spec reproduces
    // the run bit for bit — stats, events, ledger, and observer counters.
    let again = run_overload(&bundle, &spec);
    assert_eq!(stats.feeds, again.stats.feeds, "per-feed serve stats must replay identically");
    assert_eq!(stats.ticks, again.stats.ticks);
    assert_eq!(stats.state, again.stats.state);
    assert_eq!(stats.degraded_episodes, again.stats.degraded_episodes);
    assert_eq!(stats.watchdog_trips, again.stats.watchdog_trips);
    assert_eq!(stats.warnings, again.stats.warnings);
    assert_eq!(events, again.events, "event stream must replay identically");
    assert_eq!(healths, again.healths, "fleet ledger must replay identically");
    assert_eq!(windows, again.windows, "observer counters must replay identically");
}

#[test]
fn interleaved_garbage_lines_are_counted_not_fatal() {
    let bundle = trained_bundle();
    let monitors = vec![bundle.try_unpack_shared().unwrap().monitor()];
    let mut fleet = FleetMonitor::new(monitors, FleetMonitorConfig::default());

    // Every 7th line is binary-ish garbage; the rest is the usual
    // heartbeat traffic plus one burst.
    let msgs = feed_messages(0);
    let mut garbage = 0u64;
    let mut events = Vec::new();
    for (i, m) in msgs.iter().enumerate() {
        if i % 7 == 3 {
            garbage += 1;
            events.extend(fleet.ingest_line(0, &format!("\u{1}\u{2} corrupt frame {} \u{7f}", i)));
        }
        events.extend(fleet.ingest_line(0, &m.to_line()));
    }
    events.extend(fleet.flush());

    let h = fleet.health(0).clone();
    assert_eq!(h.state, FeedState::Active, "sparse garbage must not quarantine: {:?}", h);
    assert_eq!(h.parse_errors, garbage);
    assert_eq!(h.messages, msgs.len() as u64);
    assert_eq!(h.quarantines, 0);
    assert!(
        warning_count(&events) >= BURSTS.len(),
        "bursts must still be detected through interleaved garbage"
    );
}
