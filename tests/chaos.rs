//! Tier-2 chaos test: the supervised fleet monitor under transport
//! faults.
//!
//! A 38-feed fleet (the paper's vPE count) is streamed through the
//! [`FleetMonitor`] twice — once clean, once through a [`TransportSim`]
//! injecting 5% loss, 2% duplication, 30s bounded reordering and 1%
//! corruption — and the runs are compared:
//!
//! * the faulted run completes without a panic and no feed is poisoned;
//! * every feed is accounted for, with health counters that exactly
//!   partition the delivered lines;
//! * warning recall degrades by no more than 10% relative to the clean
//!   run.

use nfv_detect::lstm_detector::LstmDetectorConfig;
use nfv_detect::{
    AnomalyDetector, FeedState, FleetEvent, FleetMonitor, FleetMonitorConfig, LogCodec,
    LstmDetector, MappingConfig, ModelBundle, OnlineMonitor,
};
use nfv_simnet::{TransportFaults, TransportSim};
use nfv_syslog::message::Severity;
use nfv_syslog::SyslogMessage;

/// The paper's fleet size.
const FEEDS: usize = 38;
/// Heartbeats per feed (60s apart).
const NORMALS: usize = 220;
/// Indices after which an anomaly burst is injected.
const BURSTS: [usize; 2] = [80, 160];
/// Messages per burst (10s apart; well above `min_cluster`).
const BURST_LEN: u64 = 5;

fn msg(feed: usize, time: u64, text: &str) -> SyslogMessage {
    SyslogMessage {
        timestamp: time,
        host: format!("vpe{:02}", feed),
        process: "rpd".to_string(),
        severity: Severity::Info,
        text: text.to_string(),
    }
}

/// Cyclic normal chatter the LSTM learns to predict.
fn normal_text(i: usize) -> String {
    format!("heartbeat stage{} counter {} status ok", i % 4, i)
}

/// Trains one small detector on clean cyclic traffic and packs it the
/// way the CLI would ship it to a monitoring host.
fn trained_bundle() -> ModelBundle {
    let train: Vec<SyslogMessage> =
        (0..1200).map(|i| msg(0, i as u64 * 60, &normal_text(i))).collect();
    let codec = LogCodec::train(&train, 4);
    let mut det = LstmDetector::new(LstmDetectorConfig {
        vocab: codec.vocab_size(),
        window: 4,
        embed_dim: 6,
        hidden: 10,
        epochs: 3,
        max_train_windows: 2000,
        ..Default::default()
    });
    let stream = codec.encode_stream(&train);
    det.fit(&[&stream]);
    // Threshold just above every training score.
    let max_score = det.score(&stream, 0, u64::MAX).iter().map(|e| e.score).fold(0.0f32, f32::max);
    ModelBundle::pack(&codec, &det, max_score * 1.05, &MappingConfig::default())
}

/// One feed's stream: steady 60s heartbeats with two never-seen anomaly
/// bursts at known positions. Burst lines are distinct so the dedup ring
/// cannot legitimately swallow them.
fn feed_messages(feed: usize) -> Vec<SyslogMessage> {
    let mut out = Vec::new();
    for i in 0..NORMALS {
        out.push(msg(feed, i as u64 * 60, &normal_text(i)));
        if BURSTS.contains(&i) {
            for j in 0..BURST_LEN {
                out.push(msg(
                    feed,
                    i as u64 * 60 + 5 + j * 10,
                    &format!("chassis alarm unknown fault storm event {} feed {}", j, feed),
                ));
            }
        }
    }
    out
}

/// A fresh supervised fleet, one monitor per feed, all unpacked from the
/// same bundle.
fn fresh_fleet(bundle: &ModelBundle) -> FleetMonitor {
    let monitors: Vec<OnlineMonitor> = (0..FEEDS)
        .map(|_| {
            let (codec, det) = bundle.try_unpack().expect("freshly packed bundle is valid");
            OnlineMonitor::new(codec, det, bundle.threshold, bundle.mapping())
        })
        .collect();
    FleetMonitor::new(monitors, FleetMonitorConfig::default())
}

/// Streams per-feed raw lines through a fleet; returns all events.
fn run_fleet(fleet: &mut FleetMonitor, lines_per_feed: &[Vec<String>]) -> Vec<FleetEvent> {
    let mut events = Vec::new();
    for (feed, lines) in lines_per_feed.iter().enumerate() {
        for line in lines {
            events.extend(fleet.ingest_line(feed, line));
        }
    }
    events.extend(fleet.flush());
    events
}

fn warning_count(events: &[FleetEvent]) -> usize {
    events.iter().filter(|e| matches!(e, FleetEvent::Warning { .. })).count()
}

#[test]
fn fleet_monitor_survives_transport_chaos_with_recall_intact() {
    let bundle = trained_bundle();
    let streams: Vec<Vec<SyslogMessage>> = (0..FEEDS).map(feed_messages).collect();

    // Clean reference run.
    let clean_lines: Vec<Vec<String>> =
        streams.iter().map(|s| s.iter().map(|m| m.to_line()).collect()).collect();
    let mut clean_fleet = fresh_fleet(&bundle);
    let clean_events = run_fleet(&mut clean_fleet, &clean_lines);
    let clean_warnings = warning_count(&clean_events);
    // Two bursts per feed, each reported once.
    assert!(
        clean_warnings >= FEEDS,
        "clean run should warn on most bursts, got {} warnings for {} bursts",
        clean_warnings,
        FEEDS * BURSTS.len()
    );

    // Faulted run: the ISSUE's chaos profile.
    let faults = TransportFaults::parse("loss=0.05,dup=0.02,reorder=30,corrupt=0.01").unwrap();
    let sim = TransportSim::new(faults, 0xC0FFEE);
    let faulted: Vec<Vec<String>> =
        streams.iter().enumerate().map(|(f, s)| sim.deliver(f, s)).collect();
    let mut fleet = fresh_fleet(&bundle);
    let events = run_fleet(&mut fleet, &faulted);

    // Surviving the stream at all is the zero-panic half of the claim;
    // no monitor may have been poisoned along the way.
    assert!(
        !events.iter().any(|e| matches!(e, FleetEvent::FeedPoisoned { .. })),
        "no monitor should panic under transport faults"
    );

    // Every feed accounted for, with exact line accounting: each
    // delivered line lands in exactly one health counter.
    let healths = fleet.healths();
    assert_eq!(healths.len(), FEEDS);
    for (feed, h) in healths.iter().enumerate() {
        assert_eq!(h.state, FeedState::Active, "feed {} should stay active", feed);
        assert!(h.messages > 0, "feed {} processed no messages", feed);
        let delivered = faulted[feed].len() as u64;
        assert_eq!(
            h.messages + h.parse_errors + h.duplicates_dropped + h.skipped,
            delivered,
            "feed {} counters do not partition its {} delivered lines: {:?}",
            feed,
            delivered,
            h
        );
    }
    let total_parse_errors: u64 = healths.iter().map(|h| h.parse_errors).sum();
    let total_dups: u64 = healths.iter().map(|h| h.duplicates_dropped).sum();
    assert!(total_parse_errors > 0, "1% corruption must produce some unparseable lines");
    assert!(total_dups > 0, "2% duplication must trip the dedup ring");

    // Recall: warnings may not degrade more than 10% relative.
    let faulted_warnings = warning_count(&events);
    let lost = clean_warnings.saturating_sub(faulted_warnings);
    assert!(
        lost * 10 <= clean_warnings,
        "warning recall degraded over 10%: {} clean vs {} faulted",
        clean_warnings,
        faulted_warnings
    );
}

#[test]
fn interleaved_garbage_lines_are_counted_not_fatal() {
    let bundle = trained_bundle();
    let monitors = vec![{
        let (codec, det) = bundle.try_unpack().unwrap();
        OnlineMonitor::new(codec, det, bundle.threshold, bundle.mapping())
    }];
    let mut fleet = FleetMonitor::new(monitors, FleetMonitorConfig::default());

    // Every 7th line is binary-ish garbage; the rest is the usual
    // heartbeat traffic plus one burst.
    let msgs = feed_messages(0);
    let mut garbage = 0u64;
    let mut events = Vec::new();
    for (i, m) in msgs.iter().enumerate() {
        if i % 7 == 3 {
            garbage += 1;
            events.extend(fleet.ingest_line(0, &format!("\u{1}\u{2} corrupt frame {} \u{7f}", i)));
        }
        events.extend(fleet.ingest_line(0, &m.to_line()));
    }
    events.extend(fleet.flush());

    let h = fleet.health(0).clone();
    assert_eq!(h.state, FeedState::Active, "sparse garbage must not quarantine: {:?}", h);
    assert_eq!(h.parse_errors, garbage);
    assert_eq!(h.messages, msgs.len() as u64);
    assert_eq!(h.quarantines, 0);
    assert!(
        warning_count(&events) >= BURSTS.len(),
        "bursts must still be detected through interleaved garbage"
    );
}
