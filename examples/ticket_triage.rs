//! Ticket triage: the operational workflow of §5.3.
//!
//! For every trouble ticket, the tool lists the syslog warning clusters
//! in its predictive and infected windows and classifies the ticket
//! into the paper's operational categories: predictive signal available
//! (anomaly >= 5 min early), early-detection candidate (anomaly just
//! before or at the ticket), NFV-visible aftermath only (anomaly within
//! 15 min after), or syslog-silent.
//!
//! ```text
//! cargo run --release --example ticket_triage
//! ```

use nfvpredict::detect::triage::{categorize, triage_histogram, TriageCategory};
use nfvpredict::prelude::*;
use nfvpredict::syslog::time::{rfc3164_timestamp, MINUTE};
use std::collections::BTreeMap;

fn main() {
    let mut sim = SimConfig::preset(SimPreset::Fast, 23);
    sim.n_vpes = 6;
    sim.months = 3;
    let trace = FleetTrace::simulate(sim);

    let mut cfg = PipelineConfig::default();
    cfg.lstm.epochs = 2;
    cfg.lstm.max_train_windows = 10_000;
    let run = run_pipeline(&trace, &cfg).unwrap();
    let threshold =
        eval::sweep_prc(&run, &cfg.mapping, 24).best_f_point().expect("curve").threshold;

    // Earliest mapped warning per ticket.
    let mapping = eval::fleet_mapping(&run, threshold, &cfg.mapping);

    let mut categories: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for outcome in &mapping.per_ticket {
        let cat = categorize(outcome);
        let rank = match cat {
            TriageCategory::PredictiveSignal => 1,
            TriageCategory::EarlyDetection => 2,
            TriageCategory::VisibleAftermath => 3,
            TriageCategory::LateVisibility => 4,
            TriageCategory::SyslogSilent => 5,
        };
        let category = format!("{}. {}", rank, cat.label());
        let lead = match outcome.earliest_offset {
            Some(o) if o < 0 => format!("{} min early", -o / MINUTE as i64),
            Some(o) => format!("{} min late", o / MINUTE as i64),
            None => "-".to_string(),
        };
        categories.entry(category).or_default().push(format!(
            "ticket #{:<4} {:<9} reported {}  first warning: {}",
            outcome.ticket,
            outcome.cause.label(),
            rfc3164_timestamp(outcome.report_time),
            lead
        ));
    }

    println!("=== ticket triage at operating threshold {:.2} ===\n", threshold);
    for (category, rows) in &categories {
        println!("{} — {} tickets", category, rows.len());
        for row in rows.iter().take(6) {
            println!("   {}", row);
        }
        if rows.len() > 6 {
            println!("   ... {} more", rows.len() - 6);
        }
        println!();
    }

    // Aggregate histogram via the library helper.
    let hist = triage_histogram(&mapping.per_ticket);
    println!("=== histogram ===");
    for (cat, n) in &hist {
        println!("{:<40} {}", cat.label(), n);
    }
    println!();

    let total = mapping.per_ticket.len().max(1);
    let with_signal = mapping.per_ticket.iter().filter(|o| o.earliest_offset.is_some()).count();
    println!(
        "{} of {} non-maintenance tickets ({:.0}%) have syslog-visible anomalies — the\n\
         paper's Q2 answer was ~80% within 15 minutes of ticket generation.",
        with_signal,
        total,
        100.0 * with_signal as f32 / total as f32
    );
}
