//! Quickstart: simulate a small NFV deployment, train the LSTM anomaly
//! detector on its first month of syslogs, and map the detected
//! anomalies to trouble tickets.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nfvpredict::prelude::*;

fn main() {
    // 1. A small deployment: 6 vPEs, 3 simulated months of raw syslog
    //    text plus a trouble-ticket history.
    let mut sim = SimConfig::preset(SimPreset::Fast, 42);
    sim.n_vpes = 6;
    sim.months = 3;
    let trace = FleetTrace::simulate(sim);
    println!(
        "simulated {} syslog messages and {} tickets on {} vPEs",
        trace.total_messages(),
        trace.tickets.len(),
        trace.config.n_vpes
    );
    println!("first raw line: {}", trace.messages(0)[0].to_line());

    // 2. Run the paper's pipeline: mine templates from month 0, group
    //    vPEs by syslog similarity, train one LSTM per group, then test
    //    on the following months with monthly incremental updates.
    let mut cfg = PipelineConfig::default();
    cfg.lstm.epochs = 2;
    cfg.lstm.max_train_windows = 10_000;
    let run = run_pipeline(&trace, &cfg).unwrap();
    println!(
        "pipeline: vocab={} templates, {} vPE groups (modularity {:.2})",
        run.vocab, run.grouping.k, run.grouping.modularity
    );

    // 3. Sweep the anomaly threshold into a precision-recall curve and
    //    pick the operating point that maximizes the F-measure.
    let curve = eval::sweep_prc(&run, &cfg.mapping, 30);
    let best = curve.best_f_point().expect("non-empty curve");
    println!(
        "operating point: precision {:.2}, recall {:.2}, F {:.2} (threshold {:.2})",
        best.precision, best.recall, best.f_measure, best.threshold
    );

    // 4. Inspect the mapping at the operating point: early warnings vs
    //    errors vs false alarms (Fig 4 semantics).
    let mapping = eval::fleet_mapping(&run, best.threshold, &cfg.mapping);
    println!(
        "warning clusters: {} early warnings, {} errors, {} false alarms over {} tickets",
        mapping.early_warnings,
        mapping.errors,
        mapping.false_alarms,
        mapping.per_ticket.len()
    );

    // 5. How early do warnings arrive, per ticket type?
    let rows = eval::per_type_detection(&run, &cfg.mapping, best.threshold, &eval::FIG8_OFFSETS);
    println!("\ndetection rate by ticket type (offsets -15m..+15m):");
    print!("{}", nfv_detect::report::format_detection_table(&rows, &eval::FIG8_OFFSETS));
}
