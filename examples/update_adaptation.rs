//! Software-update adaptation: demonstrates the transfer-learning
//! mechanism of §4.3 in isolation.
//!
//! A teacher LSTM is trained on pre-update syslogs and an alarm
//! threshold is calibrated on its normal-data score distribution. A
//! software update then renames/reshapes a large share of templates,
//! sending the stale model's alarm rate through the roof (the paper
//! observed a 14x false-alarm surge). The student model — a copy of the
//! teacher with the embedding and bottom LSTM frozen — is fine-tuned on
//! just one week of post-update data and recovers; retraining from
//! scratch on the same week is clearly worse.
//!
//! ```text
//! cargo run --release --example update_adaptation
//! ```

use nfvpredict::detect::codec::LogCodec;
use nfvpredict::prelude::*;
use nfvpredict::syslog::time::{month_start, DAY};

fn ticket_free(
    trace: &FleetTrace,
    stream: &LogStream,
    vpe: usize,
    start: u64,
    end: u64,
) -> LogStream {
    nfvpredict::detect::pipeline::ticket_free(stream, &trace.tickets_for(vpe), 3 * DAY, start, end)
}

/// Fraction of scored events above `threshold`, in alarms per 1000
/// normal log messages.
fn alarm_rate(det: &LstmDetector, streams: &[LogStream], threshold: f32) -> f32 {
    let mut above = 0usize;
    let mut total = 0usize;
    for s in streams {
        let events = det.score(s, 0, u64::MAX);
        above += events.iter().filter(|e| e.score >= threshold).count();
        total += events.len();
    }
    1000.0 * above as f32 / total.max(1) as f32
}

fn main() {
    // A deployment whose software update lands in month 2.
    let mut sim = SimConfig::preset(SimPreset::Fast, 5);
    sim.n_vpes = 6;
    sim.months = 5;
    sim.update_month = Some(2);
    sim.update_fraction = 1.0; // update the whole fleet for clarity
    let trace = FleetTrace::simulate(sim.clone());
    println!("simulated {} messages; update rolls out in month 2", trace.total_messages());

    // Codec mined on month 0, with spare slots for post-update templates.
    let sample: Vec<SyslogMessage> = (0..sim.n_vpes)
        .flat_map(|v| trace.messages(v).iter().filter(|m| m.timestamp < month_start(1)).cloned())
        .collect();
    let mut codec = LogCodec::train(&sample, 24);
    println!("codec: {} templates (+spare)", codec.vocab_size());

    // Teacher: trained on the two pre-update months, all vPEs pooled.
    let lstm_cfg = LstmDetectorConfig {
        vocab: codec.vocab_size(),
        epochs: 3,
        max_train_windows: 15_000,
        ..Default::default()
    };
    let mut teacher = LstmDetector::new(lstm_cfg.clone());
    let pre_streams: Vec<LogStream> = (0..sim.n_vpes)
        .map(|v| {
            let s = codec.encode_stream(trace.messages(v));
            ticket_free(&trace, &s, v, 0, month_start(2))
        })
        .collect();
    teacher.fit(&pre_streams.iter().collect::<Vec<_>>());

    // Alarm threshold: the 99.5th percentile of the teacher's scores on
    // its own normal data (the pipeline's trigger calibration).
    let mut scores: Vec<f32> = pre_streams
        .iter()
        .flat_map(|s| teacher.score(s, 0, u64::MAX).into_iter().map(|e| e.score))
        .collect();
    scores.sort_by(f32::total_cmp);
    let threshold = scores[(scores.len() as f32 * 0.995) as usize];
    let rate_pre = alarm_rate(&teacher, &pre_streams, threshold);
    println!(
        "teacher trained; alarm threshold {:.2} -> {:.1} alarms per 1000 normal messages",
        threshold, rate_pre
    );

    // The update month passes. The codec re-mines templates so new
    // shapes get dense ids; the stale teacher then faces month 3.
    let post_week_end = month_start(3) + 7 * DAY;
    codec.refresh(
        &(0..sim.n_vpes)
            .flat_map(|v| {
                trace
                    .messages(v)
                    .iter()
                    .filter(|m| m.timestamp >= month_start(3) && m.timestamp < post_week_end)
                    .cloned()
            })
            .collect::<Vec<_>>(),
    );
    let post_streams: Vec<LogStream> = (0..sim.n_vpes)
        .map(|v| {
            let s = codec.encode_stream(trace.messages(v));
            ticket_free(&trace, &s, v, month_start(3), month_start(4))
        })
        .collect();
    let rate_stale = alarm_rate(&teacher, &post_streams, threshold);
    println!(
        "stale model on post-update month: {:.1} alarms per 1000 messages ({:.0}x surge)",
        rate_stale,
        rate_stale / rate_pre.max(0.01)
    );

    // One week of post-update data.
    let week_streams: Vec<LogStream> = (0..sim.n_vpes)
        .map(|v| {
            let s = codec.encode_stream(trace.messages(v));
            ticket_free(&trace, &s, v, month_start(3), post_week_end)
        })
        .collect();
    let week_refs: Vec<&LogStream> = week_streams.iter().collect();

    // Student A: transfer learning (copy teacher, freeze bottom,
    // fine-tune top on the week).
    let mut student = LstmDetector::new(LstmDetectorConfig { seed: 101, ..lstm_cfg.clone() });
    student.copy_weights_from(&teacher);
    student.adapt(&week_refs);

    // Student B: from scratch on the same week.
    let mut scratch = LstmDetector::new(LstmDetectorConfig { seed: 202, ..lstm_cfg });
    scratch.fit(&week_refs);

    // Fair comparison: each model gets its own threshold calibrated to
    // the same false-alarm budget (q99.5 of its scores on post-update
    // normal data), then we measure how much of the ground-truth
    // injected fault traffic of month 3 it still catches. Different
    // models have different score scales, so a shared threshold would
    // reward an undertrained model for being uniformly unsure.
    let own_threshold = |det: &LstmDetector| {
        let mut s: Vec<f32> = post_streams
            .iter()
            .flat_map(|st| det.score(st, 0, u64::MAX).into_iter().map(|e| e.score))
            .collect();
        s.sort_by(f32::total_cmp);
        s[(s.len() as f32 * 0.995) as usize]
    };
    let injected_recall = |det: &LstmDetector| {
        let thr = own_threshold(det);
        let (mut hit, mut total) = (0usize, 0usize);
        for vpe in 0..sim.n_vpes {
            let injected: std::collections::HashSet<u64> = trace
                .injected(vpe)
                .iter()
                .filter(|&&(t, _)| t >= month_start(3) && t < month_start(4))
                .map(|&(t, _)| t)
                .collect();
            if injected.is_empty() {
                continue;
            }
            let full = codec.encode_stream(trace.messages(vpe));
            for e in det.score(&full, month_start(3), month_start(4)) {
                if injected.contains(&e.time) {
                    total += 1;
                    if e.score >= thr {
                        hit += 1;
                    }
                }
            }
        }
        hit as f32 / total.max(1) as f32
    };

    let recall_student = injected_recall(&student);
    let recall_scratch = injected_recall(&scratch);
    println!("\n=== recall of injected fault anomalies at an equal false-alarm budget ===");
    println!("transfer-learning student  : {:>5.2}  (1 week of data)", recall_student);
    println!("retrained from scratch     : {:>5.2}  (same week of data)", recall_scratch);
    println!(
        "\nThe paper's finding: transfer learning on ~1 week of data replaces the\n\
         ~3 months of collection a from-scratch retrain would need (§4.3, §5.2)."
    );
}
