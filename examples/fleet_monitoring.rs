//! Fleet monitoring: the "runtime predictive analysis system running in
//! parallel with existing reactive monitoring" the paper envisions —
//! streaming edition.
//!
//! A detector is trained on the first month of raw syslogs and wrapped
//! in one [`OnlineMonitor`] per vPE. The remaining months are then
//! replayed message by message, exactly as a live deployment would see
//! them; each monitor emits warning signatures incrementally, and the
//! replay reconciles every warning against the ticket history (early
//! warning / error / false alarm). A final signature report aggregates
//! which message patterns drove the warnings (§5.3).
//!
//! ```text
//! cargo run --release --example fleet_monitoring
//! ```

use nfvpredict::detect::codec::LogCodec;
use nfvpredict::detect::online::OnlineMonitor;
use nfvpredict::detect::triage::signature_report;
use nfvpredict::prelude::*;
use nfvpredict::syslog::time::{month_start, rfc3164_timestamp, DAY, MINUTE};

fn main() {
    let mut sim = SimConfig::preset(SimPreset::Fast, 11);
    sim.n_vpes = 5;
    sim.months = 3;
    let trace = FleetTrace::simulate(sim.clone());
    println!(
        "deployment: {} vPEs, {} messages, {} tickets over {} months\n",
        sim.n_vpes,
        trace.total_messages(),
        trace.tickets.len(),
        sim.months
    );

    // --- Train on month 0 (ticket-free), pooled across the fleet. ---
    let train_end = month_start(1);
    let mut sample = Vec::new();
    for vpe in 0..sim.n_vpes {
        sample.extend(trace.messages(vpe).iter().filter(|m| m.timestamp < train_end).cloned());
    }
    let codec = LogCodec::train(&sample, 16);
    let mut detector = LstmDetector::new(LstmDetectorConfig {
        vocab: codec.vocab_size(),
        epochs: 2,
        max_train_windows: 10_000,
        ..Default::default()
    });
    let streams: Vec<LogStream> = (0..sim.n_vpes)
        .map(|vpe| {
            let intervals: Vec<(u64, u64)> = trace
                .tickets_for(vpe)
                .iter()
                .map(|t| (t.report_time.saturating_sub(3 * DAY), t.repair_time))
                .collect();
            let filtered: Vec<SyslogMessage> = trace
                .messages(vpe)
                .iter()
                .filter(|m| {
                    m.timestamp < train_end
                        && !intervals.iter().any(|&(lo, hi)| m.timestamp >= lo && m.timestamp <= hi)
                })
                .cloned()
                .collect();
            codec.encode_stream(&filtered)
        })
        .collect();
    detector.fit(&streams.iter().collect::<Vec<_>>());

    // Alarm threshold: 99.9th percentile of training scores.
    let mut scores: Vec<f32> = streams
        .iter()
        .flat_map(|s| detector.score(s, 0, u64::MAX).into_iter().map(|e| e.score))
        .collect();
    scores.sort_by(f32::total_cmp);
    let threshold = scores[((scores.len() - 1) as f32 * 0.999) as usize];
    println!("armed {} monitors with threshold {:.2}\n", sim.n_vpes, threshold);

    // --- One streaming monitor per vPE; replay months 1+. ---
    let mapping = MappingConfig::default();
    let shared = nfvpredict::detect::ModelBundle::pack(&codec, &detector, threshold, &mapping)
        .try_unpack_shared()
        .expect("freshly packed bundle is valid");
    let mut monitors: Vec<OnlineMonitor> = (0..sim.n_vpes).map(|_| shared.monitor()).collect();

    // Merge all vPE feeds into one time-ordered replay.
    let mut feed: Vec<(usize, &SyslogMessage)> = (0..sim.n_vpes)
        .flat_map(|vpe| {
            trace.messages(vpe).iter().filter(|m| m.timestamp >= train_end).map(move |m| (vpe, m))
        })
        .collect();
    feed.sort_by_key(|(_, m)| m.timestamp);

    let mut alerts: Vec<(u64, usize, String, String)> = Vec::new();
    let mut per_vpe_clusters: Vec<Vec<u64>> = vec![Vec::new(); sim.n_vpes];
    for (vpe, m) in feed {
        if let Some(warning) = monitors[vpe].observe(m) {
            per_vpe_clusters[vpe].push(warning.start);
            // Reconcile against the ticket history (Fig 4 windows).
            let mut verdict = "FALSE ALARM".to_string();
            for t in trace.tickets_for(vpe) {
                if t.cause == TicketCause::Maintenance {
                    continue;
                }
                let window_start = t.report_time.saturating_sub(mapping.predictive_period);
                if warning.start >= window_start && warning.start < t.report_time {
                    verdict = format!(
                        "EARLY WARNING: {} ticket #{} follows in {} min",
                        t.cause.label(),
                        t.id,
                        (t.report_time - warning.start) / MINUTE
                    );
                    break;
                } else if warning.start >= t.report_time && warning.start <= t.repair_time {
                    verdict = format!("ERROR inside {} ticket #{}", t.cause.label(), t.id);
                    break;
                }
            }
            alerts.push((warning.start, vpe, verdict, warning.peak_text));
        }
    }

    println!("=== live warning feed (first 25) ===");
    for (time, vpe, verdict, peak) in alerts.iter().take(25) {
        println!("[{}] vpe{:02}  {}", rfc3164_timestamp(*time), vpe, verdict);
        println!("        peak message: {}", peak);
    }
    if alerts.len() > 25 {
        println!("... {} more warnings", alerts.len() - 25);
    }

    // --- Signature report across the fleet (§5.3). ---
    println!("\n=== signature report ===");
    let mut merged: Vec<nfvpredict::detect::triage::SignatureFinding> = Vec::new();
    for (vpe, clusters) in per_vpe_clusters.iter().enumerate() {
        let tickets: Vec<Ticket> = trace
            .tickets_for(vpe)
            .iter()
            .filter(|t| t.cause != TicketCause::Maintenance)
            .map(|&&t| t)
            .collect();
        let rows = signature_report(trace.messages(vpe), &codec, clusters, &tickets, &mapping);
        for row in rows {
            match merged.iter_mut().find(|r| r.pattern == row.pattern) {
                Some(existing) => {
                    existing.clusters += row.clusters;
                    existing.early_warnings += row.early_warnings;
                    existing.errors += row.errors;
                    existing.false_alarms += row.false_alarms;
                }
                None => merged.push(row),
            }
        }
    }
    merged.sort_by_key(|r| std::cmp::Reverse(r.clusters));
    for row in merged.iter().take(8) {
        println!(
            "{:>3} clusters  hit-rate {:>4.0}%  ({} early / {} error / {} false)",
            row.clusters,
            row.hit_rate() * 100.0,
            row.early_warnings,
            row.errors,
            row.false_alarms
        );
        println!("     pattern: {}", row.pattern);
    }

    let early = alerts.iter().filter(|a| a.2.starts_with("EARLY")).count();
    let errors = alerts.iter().filter(|a| a.2.starts_with("ERROR")).count();
    let false_alarms = alerts.len() - early - errors;
    let tested_days = (month_start(sim.months) - train_end) as f32 / DAY as f32;
    println!(
        "\n=== summary: {} early warnings, {} errors, {} false alarms ({:.2}/day fleet-wide) ===",
        early,
        errors,
        false_alarms,
        false_alarms as f32 / tested_days
    );
}
