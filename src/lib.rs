//! # nfvpredict
//!
//! A complete, from-scratch Rust reproduction of *"Predictive Analysis
//! in Network Function Virtualization"* (Li et al., IMC 2018): an
//! unsupervised LSTM-based anomaly detector over virtualized
//! provider-edge (vPE) router syslogs, whose anomalies serve as early
//! warning signatures for network trouble tickets — together with every
//! substrate the study depends on.
//!
//! ## Crate map
//!
//! | module | upstream crate | contents |
//! |---|---|---|
//! | [`tensor`] | `nfv-tensor` | dense f32 matrix kernels, statistics |
//! | [`nn`] | `nfv-nn` | LSTM/dense/embedding layers, manual backprop, optimizers |
//! | [`ml`] | `nfv-ml` | k-means + modularity, TF-IDF, one-class SVM, PCA, metrics |
//! | [`syslog`] | `nfv-syslog` | message model, parser, signature tree, streams |
//! | [`simnet`] | `nfv-simnet` | the simulated 38-vPE deployment (the paper's closed dataset, rebuilt synthetically) |
//! | [`detect`] | `nfv-detect` | the paper's contribution: detectors, customization, adaptation, ticket mapping, evaluation |
//!
//! ## Quickstart
//!
//! ```
//! use nfvpredict::prelude::*;
//!
//! // 1. Simulate a small NFV deployment (syslogs + trouble tickets).
//! let mut sim = SimConfig::preset(SimPreset::Fast, 7);
//! sim.n_vpes = 4;
//! sim.months = 2;
//! let trace = FleetTrace::simulate(sim);
//!
//! // 2. Run the LSTM anomaly-detection pipeline (train on month 0,
//! //    test on month 1).
//! let mut cfg = PipelineConfig::default();
//! cfg.lstm.epochs = 1;
//! cfg.lstm.max_train_windows = 500;
//! let run = run_pipeline(&trace, &cfg).unwrap();
//!
//! // 3. Sweep the detection threshold into a precision-recall curve.
//! let curve = eval::sweep_prc(&run, &cfg.mapping, 10);
//! assert!(!curve.points.is_empty());
//! ```
//!
//! See `examples/` for full scenarios and `crates/bench/src/bin/` for
//! the per-figure reproduction harnesses.

pub use nfv_detect as detect;
pub use nfv_ml as ml;
pub use nfv_nn as nn;
pub use nfv_simnet as simnet;
pub use nfv_syslog as syslog;
pub use nfv_tensor as tensor;

/// The most common imports in one place.
pub mod prelude {
    pub use nfv_detect::eval;
    pub use nfv_detect::pipeline::{
        run_pipeline, CheckpointConfig, CrashPoint, DetectorKind, PipelineConfig, PipelineError,
        PipelineEvent, PipelineRun,
    };
    pub use nfv_detect::{
        AnomalyDetector, Grouping, LogCodec, LstmDetector, LstmDetectorConfig, MappingConfig,
        ScoredEvent,
    };
    pub use nfv_simnet::{FleetTrace, SimConfig, SimPreset, Ticket, TicketCause};
    pub use nfv_syslog::{LogRecord, LogStream, SyslogMessage};
}
