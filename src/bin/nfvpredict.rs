//! `nfvpredict` — command-line front end for the reproduction.
//!
//! ```text
//! nfvpredict simulate --out DIR [--preset fast|full] [--seed N]
//!     Simulate a deployment: writes one raw syslog file per vPE plus
//!     tickets.tsv.
//!
//! nfvpredict train --logs DIR --model FILE [--months N] [--window K]
//!                  [--epochs E] [--tickets FILE] [--threads N]
//!     Mine templates from the raw logs, train the LSTM detector on the
//!     first N months (default 1), calibrate the alarm threshold, and
//!     save a deployable model bundle.
//!
//! nfvpredict detect --model FILE --log FILE
//!     Score a raw syslog file with a trained bundle and print the
//!     warning clusters.
//!
//! nfvpredict evaluate [--preset fast|full] [--seed N] [--threads N]
//!                     [--vpes N] [--months N] [--detector NAME]
//!                     [--scenario NAME] [--checkpoint-dir DIR]
//!                     [--checkpoint-every N] [--resume]
//!                     [--kill-at-month M]
//!     End-to-end pipeline evaluation on a simulated deployment
//!     (precision-recall curve and operating point). --detector picks
//!     one of lstm|gru|autoencoder|ocsvm|pca|hmm; --scenario stresses
//!     the fleet beyond the baseline fault universe
//!     (baseline|bursty|migration|chain-failure). --threads 0 (the
//!     default) uses every available core; results are bit-identical
//!     for any thread count. With --checkpoint-dir the run persists a
//!     checkpoint after each month and --resume continues an
//!     interrupted run from the newest intact one, bit-identically.
//!     --kill-at-month M injects a crash right after month M's
//!     checkpoint (exit code 9), for crash-recovery testing.
//!
//! nfvpredict monitor --model FILE --logs DIR
//!                    [--faults loss=0.05,dup=0.02,reorder=30,corrupt=0.01]
//!                    [--seed N] [--staleness SECS]
//!     Run the supervised fleet monitor over one feed per .log file,
//!     optionally injecting transport chaos, and print per-feed health
//!     and warnings. Exit code 0 = all feeds healthy, 3 = degraded
//!     (quarantined or poisoned feeds), 1 = fatal error, 2 = usage.
//!
//! nfvpredict serve [--model FILE] [--feeds N] [--rate LINES_PER_TICK]
//!                  [--ticks N] [--tick-ms MS] [--capacity N]
//!                  [--budget N] [--stride S]
//!                  [--burst START:LEN:MULT[,..]] [--outage START:LEN[,..]]
//!                  [--anomaly START:LEN[,..]] [--faults SPEC] [--seed N]
//!                  [--stats-json FILE] [--snapshot-dir DIR]
//!                  [--snapshot-every N] [--resume] [--kill-at-tick T]
//!     Long-lived serving runtime: a replayable load generator streams
//!     syslog lines per feed through bounded SPSC rings into the online
//!     scorer. Ingest never blocks and memory never grows: a full ring
//!     drops the incoming line, sustained backlog sheds oldest-first and
//!     widens the scoring stride (degraded mode), and recovery is
//!     automatic. Without --model a small monitor is trained on the
//!     load's own clean cadence first. --tick-ms 0 (default) runs the
//!     deterministic step mode; a positive value paces ticks in real
//!     time with producer + scorer threads and a watchdog. In step mode
//!     --snapshot-dir persists a checksummed warm-restart snapshot every
//!     --snapshot-every ticks (default 10) and --resume continues from
//!     the newest intact one, bit-identically; --kill-at-tick T injects
//!     a crash right after tick T's snapshot (exit code 9). Exit code
//!     0 = finished healthy, 3 = degraded at exit (or feeds
//!     quarantined/poisoned), 1 = fatal error, 2 = usage.
//!
//! Every command also accepts --failpoints SPEC (or the NFV_FAILPOINTS
//! environment variable) to arm deterministic fault injection at the
//! IO and durability boundaries; see the nfv-fail crate.
//! ```

use nfvpredict::detect::bundle::ModelBundle;
use nfvpredict::detect::mapping::warning_clusters;
use nfvpredict::detect::serve::ServeCore;
use nfvpredict::detect::supervisor::{FeedState, FleetEvent, FleetMonitor, FleetMonitorConfig};
use nfvpredict::detect::OnlineMonitor;
use nfvpredict::prelude::*;
use nfvpredict::simnet::{TransportFaults, TransportSim};
use nfvpredict::syslog::parse::parse_line;
use nfvpredict::syslog::time::{month_start, rfc3164_timestamp, DAY};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: nfvpredict <simulate|train|detect|evaluate|monitor|serve> [flags]");
        return ExitCode::from(2);
    };
    let allowed: &[&str] = match command.as_str() {
        "simulate" => &["out", "preset", "seed", "failpoints"],
        "train" => {
            &["logs", "model", "months", "window", "epochs", "tickets", "threads", "failpoints"]
        }
        "detect" => &["model", "log", "failpoints"],
        "evaluate" => &[
            "preset",
            "seed",
            "threads",
            "vpes",
            "months",
            "detector",
            "scenario",
            "checkpoint-dir",
            "checkpoint-every",
            "resume",
            "kill-at-month",
            "failpoints",
        ],
        "monitor" => &["model", "logs", "faults", "seed", "staleness", "failpoints"],
        "serve" => &[
            "model",
            "feeds",
            "rate",
            "ticks",
            "tick-ms",
            "capacity",
            "budget",
            "stride",
            "burst",
            "outage",
            "anomaly",
            "faults",
            "seed",
            "stats-json",
            "snapshot-dir",
            "snapshot-every",
            "resume",
            "kill-at-tick",
            "failpoints",
        ],
        _ => &[],
    };
    let flags = match parse_flags(&args[1..], allowed) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {}", e);
            return ExitCode::from(2);
        }
    };
    // Arm deterministic fault injection before any IO happens: first
    // from the environment, then additively from --failpoints.
    if let Err(e) = nfv_fail::init_from_env() {
        eprintln!("error: NFV_FAILPOINTS: {}", e);
        return ExitCode::from(2);
    }
    if let Some(spec) = flag(&flags, "failpoints") {
        if let Err(e) = nfv_fail::configure(spec) {
            eprintln!("error: --failpoints: {}", e);
            return ExitCode::from(2);
        }
    }
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&flags).map(|()| ExitCode::SUCCESS),
        "train" => cmd_train(&flags).map(|()| ExitCode::SUCCESS),
        "detect" => cmd_detect(&flags).map(|()| ExitCode::SUCCESS),
        "evaluate" => cmd_evaluate(&flags),
        "monitor" => cmd_monitor(&flags),
        "serve" => cmd_serve(&flags),
        other => Err(format!("unknown command {:?}", other)),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {}", e);
            ExitCode::FAILURE
        }
    }
}

type Flags = BTreeMap<String, String>;

/// Flags that take no value; present means "true".
const BOOLEAN_FLAGS: &[&str] = &["resume"];

fn parse_flags(args: &[String], allowed: &[&str]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let name =
            flag.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {:?}", flag))?;
        if !allowed.is_empty() && !allowed.contains(&name) {
            return Err(format!(
                "unknown flag --{} (expected one of: {})",
                name,
                allowed.iter().map(|f| format!("--{}", f)).collect::<Vec<_>>().join(", ")
            ));
        }
        if BOOLEAN_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("flag --{} needs a value", name))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag<'a>(flags: &'a Flags, name: &str) -> Option<&'a str> {
    flags.get(name).map(|s| s.as_str())
}

fn required<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flag(flags, name).ok_or_else(|| format!("missing required flag --{}", name))
}

fn sim_config(flags: &Flags) -> Result<SimConfig, String> {
    let seed: u64 = flag(flags, "seed").unwrap_or("42").parse().map_err(|_| "bad --seed")?;
    match flag(flags, "preset").unwrap_or("fast") {
        "fast" => Ok(SimConfig::preset(SimPreset::Fast, seed)),
        "full" => Ok(SimConfig::preset(SimPreset::Full, seed)),
        other => Err(format!("unknown preset {:?} (fast|full)", other)),
    }
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let out = PathBuf::from(required(flags, "out")?);
    let cfg = sim_config(flags)?;
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    eprintln!("simulating {} vPEs over {} months...", cfg.n_vpes, cfg.months);
    let trace = FleetTrace::simulate(cfg.clone());

    for vpe in 0..cfg.n_vpes {
        let path = out.join(format!("{}.log", trace.topology.vpes[vpe].name));
        let mut body = String::new();
        for m in trace.messages(vpe) {
            body.push_str(&m.to_line());
            body.push('\n');
        }
        std::fs::write(&path, body).map_err(|e| e.to_string())?;
    }
    let mut tickets = String::from("id\tvpe\tcause\treport_time\trepair_time\n");
    for t in &trace.tickets {
        tickets.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            t.id,
            trace.topology.vpes[t.vpe].name,
            t.cause.label(),
            t.report_time,
            t.repair_time
        ));
    }
    std::fs::write(out.join("tickets.tsv"), tickets).map_err(|e| e.to_string())?;
    println!(
        "wrote {} messages across {} log files and {} tickets to {}",
        trace.total_messages(),
        cfg.n_vpes,
        trace.tickets.len(),
        out.display()
    );
    Ok(())
}

/// Reads and parses one raw syslog file (lines in time order).
/// Malformed lines are skipped and counted instead of aborting the
/// whole file: real collectors drop garbage, they don't stop ingesting.
fn read_log(path: &Path) -> Result<(Vec<SyslogMessage>, u64), String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{}: {}", path.display(), e))?;
    let mut out = Vec::new();
    let mut skipped = 0u64;
    let mut not_before = 0u64;
    for (ln, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        match parse_line(line, not_before) {
            Ok(msg) => {
                not_before = msg.timestamp;
                out.push(msg);
            }
            Err(e) => {
                skipped += 1;
                if skipped <= 3 {
                    eprintln!("warning: {}:{}: skipping line: {}", path.display(), ln + 1, e);
                }
            }
        }
    }
    if skipped > 3 {
        eprintln!("warning: {}: skipped {} malformed lines in total", path.display(), skipped);
    }
    Ok((out, skipped))
}

/// Ticket intervals per vPE name, from a tickets.tsv file.
fn read_ticket_intervals(path: &Path) -> Result<BTreeMap<String, Vec<(u64, u64)>>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut out: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    for line in body.lines().skip(1) {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 5 {
            continue;
        }
        let report: u64 = cols[3].parse().map_err(|_| "bad report_time")?;
        let repair: u64 = cols[4].parse().map_err(|_| "bad repair_time")?;
        out.entry(cols[1].to_string()).or_default().push((report, repair));
    }
    Ok(out)
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let logs_dir = PathBuf::from(required(flags, "logs")?);
    let model_path = PathBuf::from(required(flags, "model")?);
    let months: usize = flag(flags, "months").unwrap_or("1").parse().map_err(|_| "bad --months")?;
    let window: usize =
        flag(flags, "window").unwrap_or("10").parse().map_err(|_| "bad --window")?;
    let epochs: usize = flag(flags, "epochs").unwrap_or("3").parse().map_err(|_| "bad --epochs")?;
    let threads: usize =
        flag(flags, "threads").unwrap_or("0").parse().map_err(|_| "bad --threads")?;
    // One knob: --threads also drives the GEMM row-panel fan-out
    // (bit-identical to serial at every worker count).
    nfvpredict::tensor::gemm::set_threads(threads);
    let train_end = month_start(months);

    // Load every *.log file.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&logs_dir)
        .map_err(|e| e.to_string())?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .log files in {}", logs_dir.display()));
    }
    let intervals = match flag(flags, "tickets") {
        Some(p) => read_ticket_intervals(Path::new(p))?,
        None => BTreeMap::new(),
    };

    let mut all_msgs: Vec<Vec<SyslogMessage>> = Vec::new();
    let mut total_skipped = 0u64;
    for f in &files {
        let (msgs, skipped) = read_log(f)?;
        all_msgs.push(msgs);
        total_skipped += skipped;
    }
    eprintln!(
        "parsed {} messages from {} files ({} malformed lines skipped)",
        all_msgs.iter().map(|m| m.len()).sum::<usize>(),
        files.len(),
        total_skipped
    );

    // Mine the codec from the training window.
    let sample: Vec<SyslogMessage> = all_msgs
        .iter()
        .flat_map(|msgs| msgs.iter().filter(|m| m.timestamp < train_end).cloned())
        .collect();
    if sample.is_empty() {
        return Err("no messages inside the training window".to_string());
    }
    let codec = nfvpredict::detect::LogCodec::train(&sample, 24);
    eprintln!("mined {} templates (+spare)", codec.assigned());

    // Build ticket-free training streams.
    let streams: Vec<LogStream> = all_msgs
        .iter()
        .map(|msgs| {
            let host = msgs.first().map(|m| m.host.clone()).unwrap_or_default();
            let windows = intervals.get(&host).cloned().unwrap_or_default();
            let filtered: Vec<SyslogMessage> = msgs
                .iter()
                .filter(|m| {
                    m.timestamp < train_end
                        && !windows.iter().any(|&(report, repair)| {
                            m.timestamp + 3 * DAY > report && m.timestamp <= repair
                        })
                })
                .cloned()
                .collect();
            codec.encode_stream(&filtered)
        })
        .collect();

    let mut det = LstmDetector::new(LstmDetectorConfig {
        vocab: codec.vocab_size(),
        window,
        epochs,
        threads,
        ..Default::default()
    });
    eprintln!("training LSTM ({} epochs, window {})...", epochs, window);
    det.fit(&streams.iter().collect::<Vec<_>>());

    // Calibrate the alarm threshold at the 99.5th percentile of scores
    // on the training data.
    let mut scores: Vec<f32> = streams
        .iter()
        .flat_map(|s| det.score(s, 0, u64::MAX).into_iter().map(|e| e.score))
        .collect();
    if scores.is_empty() {
        return Err("not enough data to calibrate a threshold".to_string());
    }
    scores.sort_by(f32::total_cmp);
    let threshold = scores[((scores.len() - 1) as f32 * 0.995) as usize];

    let bundle = ModelBundle::pack(&codec, &det, threshold, &MappingConfig::default());
    bundle.save(&model_path).map_err(|e| e.to_string())?;
    println!(
        "saved model bundle to {} (threshold {:.3}, {} parameters)",
        model_path.display(),
        threshold,
        bundle.model.parameter_count()
    );
    Ok(())
}

fn cmd_detect(flags: &Flags) -> Result<(), String> {
    let model_path = required(flags, "model")?;
    let bundle =
        ModelBundle::load(Path::new(model_path)).map_err(|e| format!("{}: {}", model_path, e))?;
    let (msgs, skipped) = read_log(Path::new(required(flags, "log")?))?;
    let (codec, det) = bundle.try_unpack().map_err(|e| e.to_string())?;
    let stream = codec.encode_stream(&msgs);
    let events = det.score(&stream, 0, u64::MAX);
    let clusters = warning_clusters(&events, bundle.threshold, &bundle.mapping());

    println!(
        "scored {} messages ({} malformed lines skipped), {} anomalies above threshold {:.3}, \
         {} warning clusters",
        stream.len(),
        skipped,
        events.iter().filter(|e| e.score >= bundle.threshold).count(),
        bundle.threshold,
        clusters.len()
    );
    for c in &clusters {
        // Show the messages around the warning for operator context.
        let span = bundle.cluster_gap.max(1);
        let context: Vec<&SyslogMessage> =
            msgs.iter().filter(|m| m.timestamp >= *c && m.timestamp < c + span).take(3).collect();
        println!("WARNING at {}:", rfc3164_timestamp(*c));
        for m in context {
            println!("    {}", m.to_line());
        }
    }
    Ok(())
}

fn cmd_monitor(flags: &Flags) -> Result<ExitCode, String> {
    let model_path = required(flags, "model")?;
    let logs_dir = PathBuf::from(required(flags, "logs")?);
    let faults = match TransportFaults::parse(flag(flags, "faults").unwrap_or("")) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {}", e);
            return Ok(ExitCode::from(2));
        }
    };
    let seed: u64 = flag(flags, "seed").unwrap_or("42").parse().map_err(|_| "bad --seed")?;
    let staleness: u64 =
        flag(flags, "staleness").unwrap_or("3600").parse().map_err(|_| "bad --staleness")?;

    let bundle = ModelBundle::load_with_retry(
        Path::new(model_path),
        3,
        std::time::Duration::from_millis(50),
    )
    .map_err(|e| format!("{}: {}", model_path, e))?;

    let mut files: Vec<PathBuf> = std::fs::read_dir(&logs_dir)
        .map_err(|e| e.to_string())?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .log files in {}", logs_dir.display()));
    }

    // One hardened monitor per feed, all sharing one unpacked model.
    let shared = bundle.try_unpack_shared().map_err(|e| e.to_string())?;
    let monitors: Vec<OnlineMonitor> = files.iter().map(|_| shared.monitor()).collect();
    let cfg = FleetMonitorConfig { staleness_timeout: staleness, ..Default::default() };
    let mut fleet = FleetMonitor::new(monitors, cfg);

    let transport = (!faults.is_clean()).then(|| TransportSim::new(faults, seed));
    if let Some(t) = &transport {
        eprintln!("injecting transport faults: {:?}", t.faults());
    }

    // Drive every feed through the supervisor and collect events.
    let mut events: Vec<FleetEvent> = Vec::new();
    let mut horizon = 0u64;
    for (feed, file) in files.iter().enumerate() {
        let body =
            std::fs::read_to_string(file).map_err(|e| format!("{}: {}", file.display(), e))?;
        let lines: Vec<String> = body.lines().filter(|l| !l.is_empty()).map(String::from).collect();
        let delivered = match &transport {
            Some(t) => t.deliver_lines(feed, &lines),
            None => lines,
        };
        for line in &delivered {
            events.extend(fleet.ingest_line(feed, line));
        }
        horizon = horizon.max(fleet.health(feed).last_seen.unwrap_or(0));
    }
    events.extend(fleet.flush());
    events.extend(fleet.tick(horizon));

    // Per-feed health table.
    println!(
        "{:<12} {:>9} {:>7} {:>6} {:>8} {:>7} {:>5} {:>5}  state",
        "feed", "messages", "parse!", "dups", "reorders", "skipped", "quar", "warn"
    );
    let mut degraded = 0usize;
    for (feed, file) in files.iter().enumerate() {
        let h = fleet.health(feed);
        let name = file.file_stem().and_then(|s| s.to_str()).unwrap_or("?");
        if matches!(h.state, FeedState::Quarantined | FeedState::Poisoned) {
            degraded += 1;
        }
        println!(
            "{:<12} {:>9} {:>7} {:>6} {:>8} {:>7} {:>5} {:>5}  {:?}",
            name,
            h.messages,
            h.parse_errors,
            h.duplicates_dropped,
            h.reorders_absorbed,
            h.skipped,
            h.quarantines,
            h.warnings,
            h.state
        );
    }

    // Then the noteworthy events.
    for e in &events {
        match e {
            FleetEvent::Warning { feed, warning } => {
                let name = files[*feed].file_stem().and_then(|s| s.to_str()).unwrap_or("?");
                println!(
                    "WARNING {} at {}: {} anomalies, peak {:.2}: {}",
                    name,
                    rfc3164_timestamp(warning.start),
                    warning.anomalies,
                    warning.peak_score,
                    warning.peak_text
                );
            }
            FleetEvent::FeedQuarantined { feed, parse_errors } => {
                println!("QUARANTINED feed {} after {} parse errors", feed, parse_errors);
            }
            FleetEvent::FeedRecovered { feed } => println!("RECOVERED feed {}", feed),
            FleetEvent::FeedPoisoned { feed, reason } => {
                println!("POISONED feed {}: {}", feed, reason);
            }
            FleetEvent::FeedOverloaded { feed, dropped } => {
                println!("OVERLOADED feed {}: {} lines dropped so far", feed, dropped);
            }
            FleetEvent::FeedSilent { feed, last_seen, now } => {
                println!(
                    "SILENT feed {}: nothing since {} (now {})",
                    feed,
                    rfc3164_timestamp(*last_seen),
                    rfc3164_timestamp(*now)
                );
            }
        }
    }
    let warnings = events.iter().filter(|e| matches!(e, FleetEvent::Warning { .. })).count();
    println!("{} feeds, {} warnings, {} degraded", files.len(), warnings, degraded);
    Ok(if degraded > 0 { ExitCode::from(3) } else { ExitCode::SUCCESS })
}

fn cmd_evaluate(flags: &Flags) -> Result<ExitCode, String> {
    let mut cfg = sim_config(flags)?;
    if let Some(v) = flag(flags, "vpes") {
        cfg.n_vpes = v.parse().map_err(|_| "bad --vpes")?;
    }
    if let Some(v) = flag(flags, "months") {
        cfg.months = v.parse().map_err(|_| "bad --months")?;
    }
    match flag(flags, "scenario").unwrap_or("baseline") {
        "baseline" => {}
        "bursty" => cfg.ticket_rate *= 2.5,
        "migration" => cfg.migrations = 2 * cfg.months.max(1),
        "chain-failure" => cfg.chain_failures = cfg.months.max(1) / 2 + 1,
        other => {
            return Err(format!(
                "unknown scenario {:?} (baseline|bursty|migration|chain-failure)",
                other
            ))
        }
    }
    eprintln!("simulating {} vPEs over {} months...", cfg.n_vpes, cfg.months);
    let trace = FleetTrace::simulate(cfg);
    let mut pipe = PipelineConfig {
        threads: flag(flags, "threads").unwrap_or("0").parse().map_err(|_| "bad --threads")?,
        ..PipelineConfig::default()
    };
    let detector_name = flag(flags, "detector").unwrap_or("lstm");
    pipe.detector = match detector_name {
        "lstm" => DetectorKind::Lstm,
        "gru" => DetectorKind::Gru,
        "autoencoder" => DetectorKind::Autoencoder,
        "ocsvm" => DetectorKind::Ocsvm,
        "pca" => DetectorKind::Pca,
        "hmm" => DetectorKind::Hmm,
        other => {
            return Err(format!(
                "unknown detector {:?} (lstm|gru|autoencoder|ocsvm|pca|hmm)",
                other
            ))
        }
    };
    if flag(flags, "preset").unwrap_or("fast") == "fast" {
        pipe.lstm.epochs = 2;
        pipe.lstm.max_train_windows = 10_000;
        pipe.gru.epochs = 2;
        pipe.gru.max_train_windows = 10_000;
    }
    if let Some(dir) = flag(flags, "checkpoint-dir") {
        pipe.checkpoint.dir = Some(PathBuf::from(dir));
    }
    if let Some(every) = flag(flags, "checkpoint-every") {
        pipe.checkpoint.every = every.parse().map_err(|_| "bad --checkpoint-every")?;
    }
    pipe.checkpoint.resume = flag(flags, "resume").is_some();
    if let Some(m) = flag(flags, "kill-at-month") {
        let m: usize = m.parse().map_err(|_| "bad --kill-at-month")?;
        pipe.checkpoint.crash = Some(CrashPoint::AfterMonth(m));
    }
    eprintln!("running the monthly pipeline...");
    let run = match run_pipeline(&trace, &pipe) {
        Ok(run) => run,
        Err(PipelineError::CrashInjected(point)) => {
            eprintln!("injected crash fired {}", point);
            return Ok(ExitCode::from(9));
        }
        Err(e) => return Err(e.to_string()),
    };
    let curve = eval::sweep_prc(&run, &pipe.mapping, 40);
    print!("{}", nfvpredict::detect::report::format_prc(detector_name, &curve));
    match curve.best_f_point() {
        Some(best) => println!(
            "false alarms per day at operating point: {:.2}",
            eval::false_alarms_per_day(&run, &pipe.mapping, best.threshold)
        ),
        None => println!(
            "no operating point: the threshold sweep produced an empty PR curve \
             (no finite scores — try more months or a larger fleet)"
        ),
    }
    Ok(ExitCode::SUCCESS)
}

/// Trains a small monitor on the load generator's own clean cadence —
/// the fallback when `serve` is run without a pre-trained --model.
fn self_trained_bundle(gen: &nfvpredict::simnet::LoadGen) -> Result<ModelBundle, String> {
    // ~1200 messages of cyclic chatter is plenty for the tiny LSTM.
    let ticks = (1200 / gen.spec().base_rate.max(1)).max(4);
    let train = gen.training_messages(ticks);
    let codec = nfvpredict::detect::LogCodec::train(&train, 4);
    let mut det = LstmDetector::new(LstmDetectorConfig {
        vocab: codec.vocab_size(),
        window: 4,
        embed_dim: 6,
        hidden: 10,
        epochs: 3,
        max_train_windows: 2000,
        threads: 1,
        ..Default::default()
    });
    let stream = codec.encode_stream(&train);
    det.fit(&[&stream]);
    let max_score = det.score(&stream, 0, u64::MAX).iter().map(|e| e.score).fold(0.0f32, f32::max);
    if max_score <= 0.0 {
        return Err("self-training produced no scores to calibrate a threshold".to_string());
    }
    Ok(ModelBundle::pack(&codec, &det, max_score * 1.05, &MappingConfig::default()))
}

/// Serve snapshot generation file: `serve-snap-000120.json` is the
/// state after 120 completed load ticks.
fn serve_snapshot_path(dir: &Path, tick: u64) -> PathBuf {
    dir.join(format!("serve-snap-{:06}.json", tick))
}

/// Ticks of the snapshot generations present in `dir`, ascending.
fn serve_snapshot_generations(dir: &Path) -> Vec<u64> {
    let mut out = Vec::new();
    if let Ok(rd) = std::fs::read_dir(dir) {
        for e in rd.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if let Some(t) = name.strip_prefix("serve-snap-").and_then(|s| s.strip_suffix(".json"))
            {
                if let Ok(tick) = t.parse::<u64>() {
                    out.push(tick);
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Persists a serve snapshot with bounded retry, then degrades to
/// warn-and-continue: a transient disk hiccup must not kill a healthy
/// serving loop — the previous generation is still intact for resume.
/// Keeps the newest three generations.
fn save_serve_snapshot(core: &mut ServeCore<OnlineMonitor>, dir: &Path, tick: u64) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: serve snapshot at tick {} skipped: {}", tick, e);
        return;
    }
    let mut delay = std::time::Duration::from_millis(10);
    for attempt in 1..=3u32 {
        match core.save_snapshot(&serve_snapshot_path(dir, tick), tick) {
            Ok(()) => {
                let gens = serve_snapshot_generations(dir);
                for &old in gens.iter().rev().skip(3) {
                    let _ = std::fs::remove_file(serve_snapshot_path(dir, old));
                }
                return;
            }
            Err(e) if attempt < 3 => {
                eprintln!(
                    "warning: serve snapshot at tick {} attempt {} failed ({}); retrying",
                    tick, attempt, e
                );
                std::thread::sleep(delay);
                delay *= 2;
            }
            Err(e) => {
                eprintln!(
                    "warning: serve snapshot at tick {} skipped after {} attempts: {}",
                    tick, attempt, e
                );
            }
        }
    }
}

fn cmd_serve(flags: &Flags) -> Result<ExitCode, String> {
    use nfvpredict::detect::serve::{ServeConfig, ServeEvent, ServeState};
    use nfvpredict::simnet::{BurstSpec, LoadGen, LoadSpec, WindowSpec};

    let feeds: usize = flag(flags, "feeds").unwrap_or("4").parse().map_err(|_| "bad --feeds")?;
    let rate: u64 = flag(flags, "rate").unwrap_or("50").parse().map_err(|_| "bad --rate")?;
    let ticks: u64 = flag(flags, "ticks").unwrap_or("120").parse().map_err(|_| "bad --ticks")?;
    let tick_ms: u64 =
        flag(flags, "tick-ms").unwrap_or("0").parse().map_err(|_| "bad --tick-ms")?;
    let capacity: usize =
        flag(flags, "capacity").unwrap_or("4096").parse().map_err(|_| "bad --capacity")?;
    let budget: usize =
        flag(flags, "budget").unwrap_or("2048").parse().map_err(|_| "bad --budget")?;
    let stride: usize = flag(flags, "stride").unwrap_or("4").parse().map_err(|_| "bad --stride")?;
    let seed: u64 = flag(flags, "seed").unwrap_or("42").parse().map_err(|_| "bad --seed")?;
    let snapshot_dir = flag(flags, "snapshot-dir").map(PathBuf::from);
    let snapshot_every: u64 = flag(flags, "snapshot-every")
        .unwrap_or("10")
        .parse()
        .map_err(|_| "bad --snapshot-every")?;
    let resume = flag(flags, "resume").is_some();
    let kill_at: Option<u64> = match flag(flags, "kill-at-tick") {
        Some(s) => Some(s.parse().map_err(|_| "bad --kill-at-tick")?),
        None => None,
    };
    if feeds == 0 || rate == 0 || ticks == 0 {
        eprintln!("error: --feeds, --rate and --ticks must all be positive");
        return Ok(ExitCode::from(2));
    }
    if tick_ms > 0 && (snapshot_dir.is_some() || resume || kill_at.is_some()) {
        eprintln!("error: --snapshot-dir/--resume/--kill-at-tick need step mode (--tick-ms 0)");
        return Ok(ExitCode::from(2));
    }
    if (resume || kill_at.is_some()) && snapshot_dir.is_none() {
        eprintln!("error: --resume and --kill-at-tick need --snapshot-dir");
        return Ok(ExitCode::from(2));
    }

    // Scenario windows and transport chaos (usage errors exit 2).
    let parse_list = |name: &str| -> Vec<String> {
        flag(flags, name).map(|s| s.split(',').map(str::to_string).collect()).unwrap_or_default()
    };
    let spec_err = |e: String| {
        eprintln!("error: {}", e);
        ExitCode::from(2)
    };
    let mut bursts = Vec::new();
    let mut outages = Vec::new();
    let mut anomalies = Vec::new();
    for s in parse_list("burst") {
        match BurstSpec::parse(&s) {
            Ok(b) => bursts.push(b),
            Err(e) => return Ok(spec_err(e)),
        }
    }
    for s in parse_list("outage") {
        match WindowSpec::parse(&s) {
            Ok(w) => outages.push(w),
            Err(e) => return Ok(spec_err(e)),
        }
    }
    for s in parse_list("anomaly") {
        match WindowSpec::parse(&s) {
            Ok(w) => anomalies.push(w),
            Err(e) => return Ok(spec_err(e)),
        }
    }
    let faults = match TransportFaults::parse(flag(flags, "faults").unwrap_or("")) {
        Ok(f) => f,
        Err(e) => return Ok(spec_err(e)),
    };
    let spec = LoadSpec {
        feeds,
        base_rate: rate,
        bursts,
        outages,
        anomalies,
        anomaly_rate: 3,
        faults,
        seed,
    };

    // A monitor per feed, from a loaded bundle or self-training.
    let gen0 = LoadGen::new(spec.clone());
    let bundle = match flag(flags, "model") {
        Some(p) => {
            ModelBundle::load_with_retry(Path::new(p), 3, std::time::Duration::from_millis(50))
                .map_err(|e| format!("{}: {}", p, e))?
        }
        None => {
            eprintln!("no --model given; training a monitor on the load's clean cadence...");
            self_trained_bundle(&gen0)?
        }
    };
    let shared = bundle.try_unpack_shared().map_err(|e| e.to_string())?;
    let fleet_cfg = FleetMonitorConfig { reorder_window: faults.reorder, ..Default::default() };
    let serve_cfg = ServeConfig {
        capacity,
        tick_budget: budget,
        degraded_stride: stride.max(1),
        ..Default::default()
    };
    // Resume rebuilds a fresh core per restore attempt, so core
    // construction lives in a closure.
    let build_core = || {
        let monitors: Vec<OnlineMonitor> = (0..feeds).map(|_| shared.monitor()).collect();
        ServeCore::new(FleetMonitor::new(monitors, fleet_cfg), serve_cfg)
    };
    let mut core = build_core();

    if tick_ms == 0 {
        // Deterministic step mode: one sweep per load tick. With a
        // snapshot dir the loop periodically checkpoints serve state;
        // --resume warm-restarts from the newest intact generation and
        // --kill-at-tick injects a crash (exit 9) for restart drills.
        let mut start_tick = 0u64;
        if resume {
            let dir = snapshot_dir.as_deref().expect("validated: --resume needs --snapshot-dir");
            let mut restored = None;
            for &t in serve_snapshot_generations(dir).iter().rev() {
                let mut fresh = build_core();
                match fresh.load_snapshot(&serve_snapshot_path(dir, t)) {
                    Ok(tick) => {
                        restored = Some((fresh, tick));
                        break;
                    }
                    Err(e) => eprintln!(
                        "warning: snapshot at tick {} unusable ({}); trying older generation",
                        t, e
                    ),
                }
            }
            match restored {
                Some((fresh, tick)) => {
                    core = fresh;
                    start_tick = tick;
                    eprintln!("resuming serve from snapshot at tick {}", tick);
                }
                None => eprintln!("no intact snapshot in {}; starting from tick 0", dir.display()),
            }
        }
        let mut gen = LoadGen::new(spec);
        gen.seek(start_tick);
        for tick in start_tick..ticks {
            for feed in 0..feeds {
                for line in gen.tick_lines(tick, feed) {
                    core.offer(feed, &line).map_err(|e| e.to_string())?;
                }
            }
            core.sweep();
            let done = tick + 1;
            if let Some(dir) = snapshot_dir.as_deref() {
                if snapshot_every > 0 && done % snapshot_every == 0 {
                    save_serve_snapshot(&mut core, dir, done);
                }
            }
            if kill_at == Some(done) {
                eprintln!("injected crash fired after tick {}", done);
                return Ok(ExitCode::from(9));
            }
        }
    } else {
        // Threaded mode: a producer thread paces real-time ticks, the
        // scorer sweeps as fast as it can, a watchdog supervises.
        let mut ports = Vec::with_capacity(feeds);
        for f in 0..feeds {
            ports.push(core.take_port(f).map_err(|e| e.to_string())?);
        }
        let dog = core.spawn_watchdog(std::time::Duration::from_millis((tick_ms * 8).max(100)));
        let spec2 = spec.clone();
        let producer = std::thread::spawn(move || {
            let mut gen = LoadGen::new(spec2);
            let tick_dur = std::time::Duration::from_millis(tick_ms);
            for tick in 0..ticks {
                let t0 = std::time::Instant::now();
                for (feed, port) in ports.iter_mut().enumerate() {
                    for line in gen.tick_lines(tick, feed) {
                        port.offer(&line);
                    }
                }
                if let Some(rem) = tick_dur.checked_sub(t0.elapsed()) {
                    std::thread::sleep(rem);
                }
            }
        });
        while !producer.is_finished() || core.backlog() > 0 {
            core.sweep();
            if core.backlog() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        // A producer panic is contained, not propagated: its feeds are
        // poisoned (the panic reason lands in the event log and the
        // per-feed table) and the run still reports stats and exits 3.
        if let Err(panic) = producer.join() {
            let reason = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            eprintln!("warning: producer thread panicked ({}); poisoning its feeds", reason);
            for feed in 0..feeds {
                core.poison_feed(feed, &format!("producer thread panicked: {}", reason));
            }
        }
        let _ = dog.stop();
    }
    core.finish();
    let stats = core.stats();

    // Noteworthy events (the log is bounded; warnings are summarized).
    for ev in core.recent_events() {
        match ev {
            ServeEvent::Degraded { tick, backlog } => {
                println!("DEGRADED at sweep {} (backlog {} lines)", tick, backlog)
            }
            ServeEvent::Recovered { tick } => println!("RECOVERED at sweep {}", tick),
            ServeEvent::WatchdogTrip { tick } => println!("WATCHDOG trip at sweep {}", tick),
            ServeEvent::Fleet { event: FleetEvent::FeedOverloaded { feed, dropped }, .. } => {
                println!("OVERLOADED feed {}: {} lines dropped so far", feed, dropped)
            }
            ServeEvent::Fleet {
                event: FleetEvent::FeedQuarantined { feed, parse_errors }, ..
            } => {
                println!("QUARANTINED feed {} after {} parse errors", feed, parse_errors)
            }
            ServeEvent::Fleet { event: FleetEvent::FeedPoisoned { feed, reason }, .. } => {
                println!("POISONED feed {}: {}", feed, reason)
            }
            ServeEvent::Fleet { .. } => {}
        }
    }

    // Per-feed table: serving-runtime counters joined with fleet health
    // (parse errors from the admission path are surfaced here, not just
    // logged).
    println!(
        "{:<5} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6} {:>8} {:>5}  state",
        "feed", "lines_in", "scored", "dropped", "parse!", "dups", "skip", "windows", "warn"
    );
    let mut degraded_feeds = 0usize;
    for (feed, f) in stats.feeds.iter().enumerate() {
        let h = core.fleet().health(feed);
        if matches!(h.state, FeedState::Quarantined | FeedState::Poisoned) {
            degraded_feeds += 1;
        }
        let windows = core.fleet().observer(feed).map(|m| m.windows_scored()).unwrap_or(0);
        println!(
            "{:<5} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6} {:>8} {:>5}  {:?}",
            feed,
            f.lines_in,
            f.delivered,
            f.dropped(),
            h.parse_errors,
            h.duplicates_dropped,
            h.skipped,
            windows,
            h.warnings,
            h.state
        );
    }

    let p50_us = stats.latency.quantile_ns(0.50) / 1_000;
    let p99_us = stats.latency.quantile_ns(0.99) / 1_000;
    println!(
        "SERVE ticks={} sweeps={} lines_in={} scored={} dropped={} overflow={} shed={} \
         warnings={} degraded_episodes={} watchdog_trips={} p50_us={} p99_us={} state={:?}",
        ticks,
        stats.ticks,
        stats.lines_in(),
        stats.delivered(),
        stats.dropped(),
        stats.feeds.iter().map(|f| f.dropped_overflow).sum::<u64>(),
        stats.feeds.iter().map(|f| f.dropped_shed).sum::<u64>(),
        stats.warnings,
        stats.degraded_episodes,
        stats.watchdog_trips,
        p50_us,
        p99_us,
        stats.state
    );

    if let Some(path) = flag(flags, "stats-json") {
        let feeds_json: Vec<serde_json::Value> = stats
            .feeds
            .iter()
            .enumerate()
            .map(|(feed, f)| {
                let h = core.fleet().health(feed);
                let (ws, wss) = core
                    .fleet()
                    .observer(feed)
                    .map(|m| (m.windows_scored(), m.windows_stride_skipped()))
                    .unwrap_or((0, 0));
                serde_json::json!({
                    "feed": feed,
                    "lines_in": f.lines_in,
                    "delivered": f.delivered,
                    "dropped_overflow": f.dropped_overflow,
                    "dropped_shed": f.dropped_shed,
                    "peak_occupancy": f.peak_occupancy,
                    "messages": h.messages,
                    "parse_errors": h.parse_errors,
                    "duplicates_dropped": h.duplicates_dropped,
                    "skipped": h.skipped,
                    "overload_dropped": h.overload_dropped,
                    "warnings": h.warnings,
                    "windows_scored": ws,
                    "windows_stride_skipped": wss,
                    "state": format!("{:?}", h.state),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "ticks": ticks,
            "sweeps": stats.ticks,
            "state": format!("{:?}", stats.state),
            "lines_in": stats.lines_in(),
            "scored": stats.delivered(),
            "dropped": stats.dropped(),
            "warnings": stats.warnings,
            "degraded_episodes": stats.degraded_episodes,
            "watchdog_trips": stats.watchdog_trips,
            "latency_us": { "p50": p50_us, "p99": p99_us, "samples": stats.latency.count() },
            "feeds": feeds_json,
        });
        std::fs::write(path, format!("{:#}\n", doc)).map_err(|e| e.to_string())?;
        eprintln!("wrote stats to {}", path);
    }

    let healthy = stats.state == ServeState::Healthy && degraded_feeds == 0;
    Ok(if healthy { ExitCode::SUCCESS } else { ExitCode::from(3) })
}
